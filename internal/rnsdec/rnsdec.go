// Package rnsdec implements the plaintext-level residue-number-system
// decomposition of the paper's Figures 2 and 5: an input tensor of
// integers (e.g. pixel values in [0, 255]) is decomposed into several
// smaller tensors that propagate through the (linear) convolutional stage
// independently and in parallel, and are recomposed afterwards.
//
// Two exact modes are provided (see DESIGN.md §3, substitution S4):
//
//   - Residue mode (Basis): true RNS residues x mod m_i with CRT
//     recomposition. Recomposing requires a reduction modulo M = ∏ m_i,
//     which an approximate-HE scheme cannot evaluate blindly, so this mode
//     recomposes on decrypted outputs (the client side of Fig 1) — or on
//     plaintext tensors.
//
//   - Digit mode (DigitBasis): positional decomposition x = Σ_i d_i·Bⁱ.
//     Recomposition Σ_i Bⁱ·L(d_i) is linear, hence fully homomorphic: this
//     is the mode the encrypted Fig 5 pipeline uses.
package rnsdec

import (
	"fmt"
	"math"
)

// Basis is a set of pairwise co-prime small moduli for residue
// decomposition.
type Basis struct {
	Moduli []int64
	// M is the dynamic range ∏ m_i; values must lie in [0, M).
	M int64
	// crtW[i] = (M/m_i)·((M/m_i)^{-1} mod m_i), the CRT recombination
	// weights: x = Σ r_i·crtW[i] mod M.
	crtW []int64
}

// NewBasis validates that the moduli are > 1 and pairwise co-prime and
// precomputes the CRT weights. The product must fit in int64.
func NewBasis(moduli []int64) (Basis, error) {
	if len(moduli) == 0 {
		return Basis{}, fmt.Errorf("rnsdec: empty basis")
	}
	m := int64(1)
	for i, mi := range moduli {
		if mi <= 1 {
			return Basis{}, fmt.Errorf("rnsdec: modulus %d must be > 1", mi)
		}
		for _, mj := range moduli[:i] {
			if gcd(mi, mj) != 1 {
				return Basis{}, fmt.Errorf("rnsdec: moduli %d and %d are not co-prime", mi, mj)
			}
		}
		if m > math.MaxInt64/mi {
			return Basis{}, fmt.Errorf("rnsdec: basis product overflows int64")
		}
		m *= mi
	}
	b := Basis{Moduli: append([]int64(nil), moduli...), M: m}
	for _, mi := range b.Moduli {
		hat := m / mi
		inv := modInverse(hat%mi, mi)
		if inv < 0 {
			return Basis{}, fmt.Errorf("rnsdec: no inverse for M/%d", mi)
		}
		w := mulMod(hat, inv, m) // hat·inv can overflow; reduce mod M carefully
		b.crtW = append(b.crtW, w)
	}
	return b, nil
}

// DefaultBasis returns a basis of k pairwise co-prime moduli near 256,
// large enough for 8-bit image data (k ≥ 1). The moduli are chosen
// descending from 256 greedily.
func DefaultBasis(k int) (Basis, error) {
	var mods []int64
	cand := int64(256)
	for len(mods) < k && cand > 1 {
		ok := true
		for _, m := range mods {
			if gcd(cand, m) != 1 {
				ok = false
				break
			}
		}
		if ok {
			mods = append(mods, cand)
		}
		cand--
	}
	if len(mods) < k {
		return Basis{}, fmt.Errorf("rnsdec: cannot build %d co-prime moduli", k)
	}
	return NewBasis(mods)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInverse returns a^{-1} mod m, or -1 when it does not exist.
func modInverse(a, m int64) int64 {
	g, x, _ := extGCD(a%m, m)
	if g != 1 {
		return -1
	}
	return ((x % m) + m) % m
}

func extGCD(a, b int64) (g, x, y int64) {
	if a == 0 {
		return b, 0, 1
	}
	g, x1, y1 := extGCD(b%a, a)
	return g, y1 - (b/a)*x1, x1
}

// mulMod returns a·b mod m without overflow (schoolbook on 32-bit halves).
func mulMod(a, b, m int64) int64 {
	a %= m
	b %= m
	var r int64
	for b > 0 {
		if b&1 == 1 {
			r = (r + a) % m
		}
		a = (a << 1) % m
		b >>= 1
	}
	return r
}

// Decompose returns the residues of x (which must lie in [0, M)).
func (b Basis) Decompose(x int64) []int64 {
	if x < 0 || x >= b.M {
		panic(fmt.Sprintf("rnsdec: value %d outside dynamic range [0,%d)", x, b.M))
	}
	out := make([]int64, len(b.Moduli))
	for i, m := range b.Moduli {
		out[i] = x % m
	}
	return out
}

// Compose reconstructs x from its residues by CRT.
func (b Basis) Compose(res []int64) int64 {
	if len(res) != len(b.Moduli) {
		panic("rnsdec: residue count mismatch")
	}
	var x int64
	for i, r := range res {
		x = (x + mulMod(r%b.Moduli[i], b.crtW[i], b.M)) % b.M
	}
	return x
}

// DecomposeTensor decomposes a tensor of integer-valued float64 entries
// into one residue tensor per modulus.
func (b Basis) DecomposeTensor(t []float64) [][]float64 {
	parts := make([][]float64, len(b.Moduli))
	for i := range parts {
		parts[i] = make([]float64, len(t))
	}
	for j, v := range t {
		res := b.Decompose(int64(math.Round(v)))
		for i, r := range res {
			parts[i][j] = float64(r)
		}
	}
	return parts
}

// ComposeTensor reconstructs the original tensor from residue tensors.
func (b Basis) ComposeTensor(parts [][]float64) []float64 {
	if len(parts) != len(b.Moduli) {
		panic("rnsdec: part count mismatch")
	}
	n := len(parts[0])
	out := make([]float64, n)
	res := make([]int64, len(parts))
	for j := 0; j < n; j++ {
		for i := range parts {
			res[i] = int64(math.Round(parts[i][j]))
		}
		out[j] = float64(b.Compose(res))
	}
	return out
}

// DigitBasis is a positional base-B decomposition with a fixed digit count.
type DigitBasis struct {
	Base   int64
	Digits int
}

// NewDigitBasis returns a digit basis covering [0, Base^Digits).
func NewDigitBasis(base int64, digits int) (DigitBasis, error) {
	if base < 2 || digits < 1 {
		return DigitBasis{}, fmt.Errorf("rnsdec: invalid digit basis B=%d k=%d", base, digits)
	}
	r := int64(1)
	for i := 0; i < digits; i++ {
		if r > math.MaxInt64/base {
			return DigitBasis{}, fmt.Errorf("rnsdec: digit range overflows int64")
		}
		r *= base
	}
	return DigitBasis{Base: base, Digits: digits}, nil
}

// Range returns the dynamic range Base^Digits.
func (d DigitBasis) Range() int64 {
	r := int64(1)
	for i := 0; i < d.Digits; i++ {
		r *= d.Base
	}
	return r
}

// Decompose returns the base-B digits of x, least significant first.
func (d DigitBasis) Decompose(x int64) []int64 {
	if x < 0 || x >= d.Range() {
		panic(fmt.Sprintf("rnsdec: value %d outside digit range [0,%d)", x, d.Range()))
	}
	out := make([]int64, d.Digits)
	for i := 0; i < d.Digits; i++ {
		out[i] = x % d.Base
		x /= d.Base
	}
	return out
}

// Compose reconstructs x = Σ digits[i]·Bⁱ.
func (d DigitBasis) Compose(digits []int64) int64 {
	var x int64
	for i := d.Digits - 1; i >= 0; i-- {
		x = x*d.Base + digits[i]
	}
	return x
}

// Weights returns the linear recomposition weights Bⁱ. Because the weights
// are linear, recomposition commutes with any linear layer L:
// L(x) = Σ Weights[i]·L(d_i) — the property the homomorphic Fig 5 pipeline
// relies on.
func (d DigitBasis) Weights() []float64 {
	out := make([]float64, d.Digits)
	w := 1.0
	for i := range out {
		out[i] = w
		w *= float64(d.Base)
	}
	return out
}

// DecomposeTensor splits a tensor of integer-valued entries into digit
// tensors, least significant first.
func (d DigitBasis) DecomposeTensor(t []float64) [][]float64 {
	parts := make([][]float64, d.Digits)
	for i := range parts {
		parts[i] = make([]float64, len(t))
	}
	for j, v := range t {
		ds := d.Decompose(int64(math.Round(v)))
		for i, dv := range ds {
			parts[i][j] = float64(dv)
		}
	}
	return parts
}

// ComposeTensor linearly recombines digit tensors: out = Σ Bⁱ·parts[i].
// Unlike the residue mode this works on arbitrary real tensors (e.g. the
// outputs of a linear layer applied per digit).
func (d DigitBasis) ComposeTensor(parts [][]float64) []float64 {
	if len(parts) != d.Digits {
		panic("rnsdec: digit part count mismatch")
	}
	w := d.Weights()
	out := make([]float64, len(parts[0]))
	for i, p := range parts {
		for j, v := range p {
			out[j] += w[i] * v
		}
	}
	return out
}
