package henn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/nn"
	"cnnhe/internal/rnsdec"
	"cnnhe/internal/tensor"
)

// tinyModel builds a small SLAF CNN on 8×8 inputs:
// Conv(1→2, 3×3, s2) → SLAF(deg 3, per-channel) → Flatten → Dense(18→4).
// Depth = 1 + 2 + 1 = 4 levels.
func tinyModel(seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D(rng, 1, 2, 3, 2, 0, 8, 8)
	flat := conv.OutC * conv.OutH() * conv.OutW()
	m := &nn.Model{Layers: []nn.Layer{
		conv,
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(rng, flat, 4),
	}}
	hm := m.ReplaceReLUWithSLAF(3, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
			// Perturb the coefficients per unit so per-channel handling
			// is actually exercised.
			for u := 0; u < s.Units; u++ {
				for p := 0; p <= s.Degree; p++ {
					s.Coeffs.Data[u*(s.Degree+1)+p] *= 1 + 0.01*float64(u+p)
				}
			}
		}
	}
	return hm
}

// tinyModelBN adds a BatchNorm2D after the convolution to exercise folding.
func tinyModelBN(seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D(rng, 1, 2, 3, 2, 0, 8, 8)
	flat := conv.OutC * conv.OutH() * conv.OutW()
	bn := nn.NewBatchNorm2D(2)
	bn.RunMean = []float64{0.3, -0.2}
	bn.RunVar = []float64{1.5, 0.8}
	bn.Gamma.Data = []float64{1.2, 0.9}
	bn.Beta.Data = []float64{0.1, -0.1}
	m := &nn.Model{Layers: []nn.Layer{
		conv,
		bn,
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(rng, flat, 4),
	}}
	hm := m.ReplaceReLUWithSLAF(2, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	return hm
}

func testImage(rng *rand.Rand, n int) []float64 {
	img := make([]float64, n)
	for i := range img {
		img[i] = float64(rng.Intn(256))
	}
	return img
}

// plainForward evaluates the model on normalized pixels.
func plainForward(m *nn.Model, image []float64, c, h, w int) []float64 {
	x := tensor.New(c, h, w)
	for i := range image {
		x.Data[i] = image[i] / 255
	}
	return m.Forward(x).Data
}

func rnsEngineFor(t testing.TB, plan *Plan, logN int, bits []int) *RNSEngine {
	t.Helper()
	p, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckDepth(p.MaxLevel()); err != nil {
		t.Fatal(err)
	}
	e, err := NewRNSEngine(p, plan.Rotations(), 501)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCompileTinyModel(t *testing.T) {
	m := tinyModel(1)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if plan.InputDim != 64 {
		t.Fatalf("input dim %d", plan.InputDim)
	}
	if plan.OutputDim != 4 {
		t.Fatalf("output dim %d", plan.OutputDim)
	}
	if plan.Depth != 4 {
		t.Fatalf("depth %d want 4", plan.Depth)
	}
	if len(plan.Rotations()) == 0 {
		t.Fatal("no rotations collected")
	}
}

func TestCompileRejectsReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := nn.NewCNN1(rng)
	if _, err := Compile(m, 2048); err == nil {
		t.Fatal("expected error compiling a ReLU model")
	}
}

func TestLinearStageMatchesMatVec(t *testing.T) {
	// A single linear stage must reproduce M·x + b on the packed vector.
	rng := rand.New(rand.NewSource(3))
	rows, cols, slots := 10, 20, 512
	mat := tensor.New(rows, cols)
	for i := range mat.Data {
		mat.Data[i] = rng.NormFloat64()
	}
	bias := make([]float64, rows)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	st, err := NewLinearStage("t", mat, bias, slots)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Slots: slots, InputDim: cols, OutputDim: rows, Stages: []Stage{st}, Depth: 1}

	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30})
	x := make([]float64, cols)
	for i := range x {
		x[i] = rng.NormFloat64() * 2
	}
	ct := e.EncryptVec(x)
	out := st.Eval(e, ct)
	got := e.DecryptVec(out)
	want := tensor.MatVec(mat, x)
	for i := 0; i < rows; i++ {
		if math.Abs(got[i]-(want[i]+bias[i])) > 1e-2 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], want[i]+bias[i])
		}
	}
	// Slots beyond the output must be ~zero (diagonals masked to rows).
	for i := rows; i < rows+16; i++ {
		if math.Abs(got[i]) > 1e-2 {
			t.Fatalf("slot %d should be zero, got %g", i, got[i])
		}
	}
}

func TestActStageMatchesPolynomial(t *testing.T) {
	slots := 512
	s := nn.NewSLAF(3, 1)
	s.Coeffs.Data = []float64{0.25, -0.5, 0.125, 0.0625}
	st, err := NewActStage("t", s, 16, func(int) int { return 0 }, slots)
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{Slots: slots, InputDim: 16, OutputDim: 16, Stages: []Stage{st}, Depth: 2}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30})
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ct := e.EncryptVec(x)
	out := st.Eval(e, ct)
	got := e.DecryptVec(out)
	for i := range x {
		v := x[i]
		want := 0.25 - 0.5*v + 0.125*v*v + 0.0625*v*v*v
		if math.Abs(got[i]-want) > 1e-2 {
			t.Fatalf("slot %d: got %g want %g", i, got[i], want)
		}
	}
}

func TestEndToEndTinyModelRNS(t *testing.T) {
	m := tinyModel(5)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(6))
	img := testImage(rng, 64)
	logits, lat := plan.Infer(e, img)
	if lat <= 0 {
		t.Fatal("latency not measured")
	}
	want := plainForward(m, img, 1, 8, 8)
	for i := range want {
		if math.Abs(logits[i]-want[i]) > 0.05 {
			t.Fatalf("logit %d: got %g want %g", i, logits[i], want[i])
		}
	}
}

func TestEndToEndTinyModelBNFolding(t *testing.T) {
	m := tinyModelBN(7)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	// BN must be folded: stage count is conv+bn, act, dense = 3.
	if len(plan.Stages) != 3 {
		t.Fatalf("stage count %d want 3 (BN folded)", len(plan.Stages))
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(8))
	img := testImage(rng, 64)
	logits, _ := plan.Infer(e, img)
	want := plainForward(m, img, 1, 8, 8)
	for i := range want {
		if math.Abs(logits[i]-want[i]) > 0.05 {
			t.Fatalf("logit %d: got %g want %g", i, logits[i], want[i])
		}
	}
}

func TestEndToEndTinyModelBig(t *testing.T) {
	m := tinyModel(9)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := ckksbig.FromRNSParameters(rp)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewBigEngine(bp, plan.Rotations(), 502)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	img := testImage(rng, 64)
	logits, _ := plan.Infer(e, img)
	want := plainForward(m, img, 1, 8, 8)
	for i := range want {
		if math.Abs(logits[i]-want[i]) > 0.05 {
			t.Fatalf("big engine logit %d: got %g want %g", i, logits[i], want[i])
		}
	}
}

func TestRNSPlanMatchesBasePlan(t *testing.T) {
	m := tinyModel(11)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(12))
	img := testImage(rng, 64)
	base, _ := plan.Infer(e, img)

	for _, k := range []int{1, 2, 3} {
		rp, err := NewRNSPlan(plan, k, false)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Digits.Range() < 256 {
			t.Fatalf("k=%d digit range %d too small for pixels", k, rp.Digits.Range())
		}
		got, _ := rp.Infer(e, img)
		for i := range base {
			if math.Abs(got[i]-base[i]) > 0.05 {
				t.Fatalf("k=%d logit %d: %g vs base %g", k, i, got[i], base[i])
			}
		}
	}
}

func TestRNSPlanParallelMatchesSequential(t *testing.T) {
	m := tinyModel(13)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(14))
	img := testImage(rng, 64)

	db, err := rnsdec.NewDigitBasis(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := (&RNSPlan{Base: plan, Digits: db}).Infer(e, img)
	par, _ := (&RNSPlan{Base: plan, Digits: db, Parallel: true}).Infer(e, img)
	// The two runs encrypt with fresh randomness, so results agree only up
	// to encryption noise.
	for i := range seq {
		if math.Abs(seq[i]-par[i]) > 0.02 {
			t.Fatalf("parallel RNS inference differs at logit %d: %g vs %g", i, seq[i], par[i])
		}
	}
}

func TestEvaluateEncrypted(t *testing.T) {
	m := tinyModel(15)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(16))
	var images [][]float64
	var labels []int
	for i := 0; i < 3; i++ {
		img := testImage(rng, 64)
		images = append(images, img)
		labels = append(labels, Logits(plainForward(m, img, 1, 8, 8)).Argmax())
	}
	acc, stats, err := plan.EvaluateEncrypted(e, images, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1.0 {
		t.Fatalf("encrypted accuracy %.2f should match plaintext labels", acc)
	}
	if stats.N != 3 || stats.Min <= 0 || stats.Avg < stats.Min || stats.Max < stats.Avg {
		t.Fatalf("bad stats %+v", stats)
	}
}

func TestInferCtxRejectsBadInput(t *testing.T) {
	m := tinyModel(15)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	_, rep, err := plan.InferCtx(context.Background(), e, make([]float64, plan.InputDim+1))
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput for mis-sized image, got %v", err)
	}
	if rep == nil {
		t.Fatal("report should be non-nil on failure")
	}

	images := [][]float64{make([]float64, plan.InputDim)}
	if _, _, err := plan.EvaluateEncrypted(e, images, nil, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput for missing labels, got %v", err)
	}
	if _, _, err := plan.EvaluateEncrypted(e, nil, nil, 0); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput for empty batch, got %v", err)
	}
	bad := [][]float64{make([]float64, plan.InputDim-3)}
	if _, _, err := plan.EvaluateEncrypted(e, bad, []int{0}, 1); !errors.Is(err, ErrBadInput) {
		t.Fatalf("want ErrBadInput for mis-sized batch image, got %v", err)
	}
}

func TestInferCtxCancelled(t *testing.T) {
	m := tinyModel(15)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(5))
	_, rep, err := plan.InferCtx(ctx, e, testImage(rng, plan.InputDim))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep.FailedStage == "" {
		t.Fatal("report should name the failed stage")
	}
}

func TestLatencyStatsZeroSamples(t *testing.T) {
	s := newLatencyStats()
	s.finish()
	if s.Min != 0 || s.Max != 0 || s.Avg != 0 || s.N != 0 {
		t.Fatalf("zero-sample stats not rendered as zeros: %+v", s)
	}
	want := "min 0.00s max 0.00s avg 0.00s (n=0)"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	// One sample still works as before.
	s2 := newLatencyStats()
	s2.add(2 * time.Second)
	s2.finish()
	if s2.Min != 2*time.Second || s2.Max != 2*time.Second || s2.Avg != 2*time.Second || s2.N != 1 {
		t.Fatalf("single-sample stats wrong: %+v", s2)
	}
}
