package ring

import (
	"math/big"
	"math/rand"
	"testing"

	"cnnhe/internal/primes"
)

func TestPolyVectorOps(t *testing.T) {
	r := testRing(t, 6, []int{30, 40}, 0)
	rng := rand.New(rand.NewSource(61))
	limbs := r.Limbs(1, false)
	a := r.NewPoly(1)
	b := r.NewPoly(1)
	r.SampleUniform(rng, limbs, a)
	r.SampleUniform(rng, limbs, b)

	// (a - b) + b == a
	diff := r.NewPoly(1)
	r.Sub(limbs, a, b, diff)
	sum := r.NewPoly(1)
	r.Add(limbs, diff, b, sum)
	if !r.Equal(limbs, sum, a) {
		t.Fatal("(a-b)+b != a")
	}

	// a + (-a) == 0
	neg := r.NewPoly(1)
	r.Neg(limbs, a, neg)
	z := r.NewPoly(1)
	r.Add(limbs, a, neg, z)
	zero := r.NewPoly(1)
	r.Zero(limbs, zero)
	if !r.Equal(limbs, z, zero) {
		t.Fatal("a + (-a) != 0")
	}

	// Copy + Equal
	c := r.NewPoly(1)
	r.Copy(limbs, a, c)
	if !r.Equal(limbs, a, c) {
		t.Fatal("copy not equal")
	}
	c.Coeffs[0][0] ^= 1
	if r.Equal(limbs, a, c) {
		t.Fatal("Equal missed a difference")
	}
}

func TestMulCoeffsThenAddAccumulates(t *testing.T) {
	r := testRing(t, 5, []int{30}, 0)
	rng := rand.New(rand.NewSource(62))
	limbs := r.Limbs(0, false)
	a := r.NewPoly(0)
	b := r.NewPoly(0)
	acc := r.NewPoly(0)
	r.SampleUniform(rng, limbs, a)
	r.SampleUniform(rng, limbs, b)
	r.SampleUniform(rng, limbs, acc)
	want := r.NewPoly(0)
	r.MulCoeffs(limbs, a, b, want)
	r.Add(limbs, want, acc, want)
	r.MulCoeffsThenAdd(limbs, a, b, acc)
	if !r.Equal(limbs, acc, want) {
		t.Fatal("MulCoeffsThenAdd != Mul + Add")
	}
}

func TestMulScalarMatchesBig(t *testing.T) {
	r := testRing(t, 5, []int{30, 40}, 0)
	rng := rand.New(rand.NewSource(63))
	limbs := r.Limbs(1, false)
	a := r.NewPoly(1)
	r.SampleUniform(rng, limbs, a)
	s := big.NewInt(987654321)
	out := r.NewPoly(1)
	r.MulScalar(limbs, a, s, out)
	v := new(big.Int)
	w := new(big.Int)
	for _, li := range limbs {
		mod := r.SubRings[li].Modulus()
		for j := 0; j < r.N(); j++ {
			r.SubRings[li].CoeffBig(a.Coeffs[li], j, v)
			v.Mul(v, s).Mod(v, mod)
			r.SubRings[li].CoeffBig(out.Coeffs[li], j, w)
			if v.Cmp(w) != 0 {
				t.Fatalf("scalar mul mismatch limb %d coeff %d", li, j)
			}
		}
	}
}

func TestWideSubringOps(t *testing.T) {
	chain, err := primes.BuildChain(5, []int{80, 90}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(32, chain.Moduli, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(64))
	sr := r.SubRings[0].(*wideRing)
	n := r.N()
	a := make([]uint64, 2*n)
	b := make([]uint64, 2*n)
	sr.SampleUniform(rng, a)
	sr.SampleUniform(rng, b)

	// Add/Sub/Neg consistency.
	sum := make([]uint64, 2*n)
	sr.Add(a, b, sum)
	diff := make([]uint64, 2*n)
	sr.Sub(sum, b, diff)
	for i := range a {
		if diff[i] != a[i] {
			t.Fatal("wide (a+b)-b != a")
		}
	}
	neg := make([]uint64, 2*n)
	sr.Neg(a, neg)
	z := make([]uint64, 2*n)
	sr.Add(a, neg, z)
	for i := range z {
		if z[i] != 0 {
			t.Fatal("wide a + (-a) != 0")
		}
	}

	// MulCoeffsThenAdd == Mul + Add.
	acc := make([]uint64, 2*n)
	sr.SampleUniform(rng, acc)
	want := make([]uint64, 2*n)
	sr.MulCoeffs(a, b, want)
	sr.Add(want, acc, want)
	sr.MulCoeffsThenAdd(a, b, acc)
	for i := range acc {
		if acc[i] != want[i] {
			t.Fatal("wide MulCoeffsThenAdd mismatch")
		}
	}

	// SubScalarThenMulScalar == (a - c)·s.
	c := new(big.Int).SetUint64(123456789)
	s := new(big.Int).SetUint64(987654)
	out := make([]uint64, 2*n)
	sr.SubScalarThenMulScalar(a, c, s, out)
	mod := sr.Modulus()
	v := new(big.Int)
	for i := 0; i < n; i++ {
		sr.CoeffBig(a, i, v)
		v.Sub(v, c).Mul(v, s).Mod(v, mod)
		got := new(big.Int)
		sr.CoeffBig(out, i, got)
		if v.Cmp(got) != 0 {
			t.Fatalf("wide SubScalarThenMulScalar mismatch at %d", i)
		}
	}

	// SetCoeffInt64 negative values.
	p := make([]uint64, 2*n)
	sr.SetCoeffInt64(p, 0, -5)
	sr.CoeffBig(p, 0, v)
	want5 := new(big.Int).Sub(mod, big.NewInt(5))
	if v.Cmp(want5) != 0 {
		t.Fatal("wide negative SetCoeffInt64 wrong")
	}

	// Automorphism composition on the wide backend.
	g := GaloisElementForRotation(5, 2)
	gi := GaloisElementForRotation(5, -2)
	t1 := make([]uint64, 2*n)
	t2 := make([]uint64, 2*n)
	sr.Automorphism(a, g, t1)
	sr.Automorphism(t1, gi, t2)
	for i := range a {
		if t2[i] != a[i] {
			t.Fatal("wide automorphism composition not identity")
		}
	}

	// Cross-width ReduceFrom: wide → word and word → wide.
	chainW, err := primes.BuildChain(5, []int{30}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRing(32, chainW.Moduli, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	word := rw.SubRings[0].(*wordRing)
	wordOut := make([]uint64, n)
	word.ReduceFrom(sr, a, wordOut)
	wmod := word.Modulus()
	for i := 0; i < n; i++ {
		sr.CoeffBig(a, i, v)
		v.Mod(v, wmod)
		if v.Uint64() != wordOut[i] {
			t.Fatalf("wide→word reduce mismatch at %d", i)
		}
	}
	wordVals := make([]uint64, n)
	word.SampleUniform(rng, wordVals)
	wideOut := make([]uint64, 2*n)
	sr.ReduceFrom(word, wordVals, wideOut)
	for i := 0; i < n; i++ {
		if wideOut[2*i] != wordVals[i] || wideOut[2*i+1] != 0 {
			t.Fatalf("word→wide reduce mismatch at %d", i)
		}
	}
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(16, nil, 0, 1); err == nil {
		t.Fatal("expected error for empty moduli")
	}
	if _, err := NewRing(16, []*big.Int{big.NewInt(97)}, 1, 1); err == nil {
		t.Fatal("expected error for special >= len(moduli)")
	}
	// Non-co-prime moduli (same prime twice).
	p := big.NewInt(97) // 97 ≡ 1 mod 32
	if _, err := NewRing(16, []*big.Int{p, p}, 0, 1); err == nil {
		t.Fatal("expected error for repeated modulus")
	}
}

func TestSubRingPanicsOnBadDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSubRing(12, big.NewInt(97), rand.New(rand.NewSource(1)))
}
