package mnist

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cnnhe/internal/nn"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(50, 42)
	b := Synthetic(50, 42)
	for i := range a.Pixels {
		if a.Labels[i] != b.Labels[i] || !bytes.Equal(a.Pixels[i], b.Pixels[i]) {
			t.Fatal("synthetic generation is not deterministic")
		}
	}
	c := Synthetic(50, 43)
	same := true
	for i := range a.Pixels {
		if !bytes.Equal(a.Pixels[i], c.Pixels[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSyntheticCoversAllClasses(t *testing.T) {
	d := Synthetic(500, 1)
	counts := make([]int, 10)
	for _, l := range d.Labels {
		counts[l]++
	}
	for digit, c := range counts {
		if c == 0 {
			t.Fatalf("digit %d never generated", digit)
		}
	}
}

func TestSyntheticPixelRangeAndInk(t *testing.T) {
	d := Synthetic(100, 2)
	for i := range d.Pixels {
		if len(d.Pixels[i]) != Rows*Cols {
			t.Fatal("wrong image size")
		}
		ink := 0
		for _, p := range d.Pixels[i] {
			if p > 128 {
				ink++
			}
		}
		if ink < 10 {
			t.Fatalf("image %d (label %d) has almost no ink (%d bright pixels)", i, d.Labels[i], ink)
		}
		if ink > Rows*Cols/2 {
			t.Fatalf("image %d is mostly ink (%d bright pixels)", i, ink)
		}
	}
}

func TestToNNAndImage(t *testing.T) {
	d := Synthetic(10, 3)
	ds := d.ToNN()
	if ds.Len() != 10 {
		t.Fatal("length mismatch")
	}
	img := ds.Images[0]
	if img.Shape[0] != 1 || img.Shape[1] != Rows || img.Shape[2] != Cols {
		t.Fatalf("shape %v", img.Shape)
	}
	raw := d.Image(0)
	for j := range raw {
		if raw[j] < 0 || raw[j] > 255 {
			t.Fatal("raw pixel out of range")
		}
		if diff := raw[j]/255 - img.Data[j]; diff > 1e-12 || diff < -1e-12 {
			t.Fatal("normalization mismatch between Image and ToNN")
		}
	}
}

func TestSubset(t *testing.T) {
	d := Synthetic(20, 4)
	s := d.Subset(5)
	if s.Len() != 5 {
		t.Fatal("subset length")
	}
	if d.Subset(0).Len() != 20 || d.Subset(100).Len() != 20 {
		t.Fatal("subset bounds handling")
	}
}

// writeIDX creates a tiny valid IDX pair for loader tests.
func writeIDX(t *testing.T, dir string, gzipped bool) {
	t.Helper()
	n := 3
	var imgBuf bytes.Buffer
	binary.Write(&imgBuf, binary.BigEndian, uint32(0x803))
	binary.Write(&imgBuf, binary.BigEndian, uint32(n))
	binary.Write(&imgBuf, binary.BigEndian, uint32(Rows))
	binary.Write(&imgBuf, binary.BigEndian, uint32(Cols))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		img := make([]byte, Rows*Cols)
		rng.Read(img)
		imgBuf.Write(img)
	}
	var lblBuf bytes.Buffer
	binary.Write(&lblBuf, binary.BigEndian, uint32(0x801))
	binary.Write(&lblBuf, binary.BigEndian, uint32(n))
	lblBuf.Write([]byte{3, 1, 4})

	write := func(name string, data []byte) {
		path := filepath.Join(dir, name)
		if gzipped {
			var gz bytes.Buffer
			w := gzip.NewWriter(&gz)
			w.Write(data)
			w.Close()
			data = gz.Bytes()
			path += ".gz"
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, base := range []string{"train-images-idx3-ubyte", "t10k-images-idx3-ubyte"} {
		write(base, imgBuf.Bytes())
	}
	for _, base := range []string{"train-labels-idx1-ubyte", "t10k-labels-idx1-ubyte"} {
		write(base, lblBuf.Bytes())
	}
}

func TestLoadIDXPlainAndGzip(t *testing.T) {
	for _, gz := range []bool{false, true} {
		dir := t.TempDir()
		writeIDX(t, dir, gz)
		train, test, err := LoadIDX(dir)
		if err != nil {
			t.Fatalf("gz=%v: %v", gz, err)
		}
		if train.Len() != 3 || test.Len() != 3 {
			t.Fatalf("gz=%v: wrong sizes", gz)
		}
		if train.Labels[0] != 3 || train.Labels[2] != 4 {
			t.Fatalf("gz=%v: labels %v", gz, train.Labels)
		}
	}
}

func TestLoadIDXErrors(t *testing.T) {
	if _, _, err := LoadIDX(t.TempDir()); err == nil {
		t.Fatal("expected error for empty dir")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "train-images-idx3-ubyte"), []byte{1, 2, 3}, 0o644)
	if _, _, err := LoadIDX(dir); err == nil {
		t.Fatal("expected error for truncated file")
	}
}

func TestLoadFallsBackToSynthetic(t *testing.T) {
	os.Unsetenv("MNIST_DIR")
	train, test, source := Load(30, 10, 7)
	if source != "synthetic" {
		t.Fatalf("source %q", source)
	}
	if train.Len() != 30 || test.Len() != 10 {
		t.Fatal("wrong sizes")
	}
}

func TestSyntheticIsLearnable(t *testing.T) {
	// A small dense model must learn the synthetic digits well above
	// chance in a few epochs — the property that makes the substitution
	// meaningful.
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	train := Synthetic(1500, 11).ToNN()
	test := Synthetic(300, 12).ToNN()
	rng := rand.New(rand.NewSource(5))
	m := &nn.Model{Layers: []nn.Layer{
		nn.NewFlatten(),
		nn.NewDense(rng, Rows*Cols, 64),
		nn.NewReLU(),
		nn.NewDense(rng, 64, 10),
	}}
	nn.Train(m, train, nn.TrainConfig{Epochs: 8, BatchSize: 32, MaxLR: 0.05, Momentum: 0.9, Seed: 1})
	acc := nn.Evaluate(m, test)
	if acc < 0.8 {
		t.Fatalf("synthetic digits should be learnable: accuracy %.3f", acc)
	}
}
