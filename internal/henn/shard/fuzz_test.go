package shard

import (
	"errors"
	"testing"
)

// FuzzDecodeManifest holds the manifest reader to the same contract as
// the six ckks frame readers: arbitrary input must yield a typed error
// (ErrFormat/ErrChecksum) or decode cleanly — never a panic, and never
// an unclassified error.
func FuzzDecodeManifest(f *testing.F) {
	m, err := New(Shape{C: 3, H: 32, W: 32}, Grid{Gy: 2, Gx: 1}, 2048)
	if err != nil {
		f.Fatal(err)
	}
	golden := m.Encode()
	f.Add(golden)
	f.Add(golden[:len(golden)-1]) // truncated checksum
	f.Add(golden[:len(golden)/2]) // truncated payload
	f.Add([]byte{})
	f.Add([]byte{golden[0]})                  // tag only
	f.Add([]byte{golden[0], wireVersion + 1}) // bad version
	flipped := append([]byte(nil), golden...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeManifest(data)
		if err != nil {
			if errors.Is(err, ErrFormat) || errors.Is(err, ErrChecksum) {
				return
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		// Anything that decodes must be internally consistent enough to
		// re-encode and survive the element-index bijection.
		if _, err := New(got.Shape, got.Grid, got.Slots); err != nil {
			t.Fatalf("decoded manifest fails validation: %v", err)
		}
		for s := 0; s < got.NumShards(); s++ {
			_ = got.ShardLen(s)
		}
	})
}
