// Package client is the key-holder's side of the encrypted inference
// protocol: it generates CKKS keys locally (the secret key never leaves
// the process), registers the evaluation-key bundle with a heserve
// instance, encrypts images, and decrypts returned logits.
//
// The wire protocol it speaks (shared DTOs below, also imported by
// internal/serve so both ends compile against one definition):
//
//	GET  /v1/info                → InfoResponse (model, params, rotations)
//	POST /v1/keys                ← serialized ckks.KeyBundle
//	                             → RegisterResponse{fingerprint}
//	POST /v1/classify/encrypted  ← serialized ciphertext,
//	                               X-Cnnhe-Key-Fingerprint header
//	                             → serialized encrypted-logits ciphertext
package client

import (
	"encoding/base64"
	"fmt"

	"cnnhe/internal/henn/shard"
)

// Protocol routes and headers.
const (
	// PathInfo serves the plan/parameter manifest clients derive their
	// key material from.
	PathInfo = "/v1/info"
	// PathKeys registers an evaluation-key bundle.
	PathKeys = "/v1/keys"
	// PathClassifyEncrypted runs one encrypted classification.
	PathClassifyEncrypted = "/v1/classify/encrypted"

	// HeaderKeyFingerprint carries the client's bundle fingerprint on
	// encrypted classify requests.
	HeaderKeyFingerprint = "X-Cnnhe-Key-Fingerprint"
	// HeaderEvalMillis returns the server-side evaluation wall time on
	// encrypted classify responses.
	HeaderEvalMillis = "X-Cnnhe-Eval-Ms"
	// HeaderTraceparent is the W3C Trace Context header the client
	// stamps so the request can be joined to the server's span tree.
	HeaderTraceparent = "traceparent"
	// HeaderRequestID returns the server-side request ID — the handle
	// for log lines and /debug/requests on the server.
	HeaderRequestID = "X-Request-Id"

	// ContentTypeCKKS is the media type of framed CKKS wire objects.
	ContentTypeCKKS = "application/x-cnnhe-ckks"
)

// ParamsInfo is the exact CKKS instantiation descriptor: everything a
// client needs to rebuild ckks.Parameters bit-for-bit. Moduli travel as
// decimal strings (they exceed JSON's exact-integer range).
type ParamsInfo struct {
	LogN         int      `json:"log_n"`
	Scale        float64  `json:"scale"`
	H            int      `json:"h"`
	Sigma        float64  `json:"sigma"`
	RingSeed     int64    `json:"ring_seed"`
	Moduli       []string `json:"moduli"`
	BitSizes     []int    `json:"bit_sizes"`
	SpecialCount int      `json:"special_count"`
	// Fingerprint is the server's ckks.Parameters.Fingerprint(); clients
	// verify their reconstruction against it before generating keys.
	Fingerprint string `json:"fingerprint"`
}

// InfoResponse is the GET /v1/info body.
type InfoResponse struct {
	// Model is the loaded architecture name (e.g. "cnn1").
	Model string `json:"model"`
	// Backend is the engine name (e.g. "ckks-rns").
	Backend string `json:"backend"`
	// InputDim and OutputDim are the plan's image and logit sizes.
	InputDim  int `json:"input_dim"`
	OutputDim int `json:"output_dim"`
	// Slots is the ciphertext slot count.
	Slots int `json:"slots"`
	// Levels is the modulus chain's usable depth (max level).
	Levels int `json:"levels"`
	// Rotations is the plan's required rotation set; registered bundles
	// must cover every entry. Sharded plans advertise the union over all
	// cross-shard blocks, so one bundle covers every shard subgraph.
	Rotations []int `json:"rotations"`
	// Params describes the CKKS instantiation.
	Params ParamsInfo `json:"params"`
	// EncryptedRoute reports whether POST /v1/classify/encrypted is
	// mounted (the big backend serves plaintext classify only).
	EncryptedRoute bool `json:"encrypted_route"`
	// Shards is the number of input ciphertexts one encrypted classify
	// request carries (0 or 1: unsharded single-ciphertext protocol).
	Shards int `json:"shards,omitempty"`
	// ShardManifest is the base64 (std) wire encoding of the input
	// shard.Manifest when Shards > 1; clients split images by it.
	ShardManifest string `json:"shard_manifest,omitempty"`
}

// Manifest decodes the advertised input shard manifest. It errors when
// the server did not advertise one (Shards ≤ 1).
func (info *InfoResponse) Manifest() (shard.Manifest, error) {
	if info.ShardManifest == "" {
		return shard.Manifest{}, fmt.Errorf("client: server advertises no shard manifest")
	}
	raw, err := base64.StdEncoding.DecodeString(info.ShardManifest)
	if err != nil {
		return shard.Manifest{}, fmt.Errorf("client: decoding shard manifest: %w", err)
	}
	man, err := shard.DecodeManifest(raw)
	if err != nil {
		return shard.Manifest{}, fmt.Errorf("client: decoding shard manifest: %w", err)
	}
	if info.Shards != man.NumShards() {
		return shard.Manifest{}, fmt.Errorf("client: manifest has %d shards, info says %d", man.NumShards(), info.Shards)
	}
	return man, nil
}

// EncodeManifest is the server-side counterpart of Manifest.
func EncodeManifest(man shard.Manifest) string {
	return base64.StdEncoding.EncodeToString(man.Encode())
}

// RegisterResponse is the POST /v1/keys success body.
type RegisterResponse struct {
	// Fingerprint is the content address the server stored the bundle
	// under — identical to the client's locally computed value.
	Fingerprint string `json:"fingerprint"`
	// Rotations is how many rotation keys the bundle carried.
	Rotations int `json:"rotations"`
}
