package henn

import (
	"math"
	"strings"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/henn/ir"
)

func TestLowerTinyModel(t *testing.T) {
	m := tinyModel(1)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	g, err := plan.Lower(e)
	if err != nil {
		t.Fatal(err)
	}
	if g.Inputs != 1 {
		t.Fatalf("inputs %d, want 1", g.Inputs)
	}
	if got, want := len(g.Stages), 1+len(plan.Stages); got != want {
		t.Fatalf("%d stages, want %d", got, want)
	}
	if g.Stages[0].Name != "encrypt" || g.Stages[0].Record {
		t.Fatalf("stage 0 = %+v, want unrecorded encrypt", g.Stages[0])
	}
	for i, s := range plan.Stages {
		name := g.Stages[i+1].Name
		if !strings.Contains(name, s.Describe()) || !strings.HasPrefix(name, "stage ") {
			t.Fatalf("stage %d lowered as %q", i, name)
		}
		if !g.Stages[i+1].Record {
			t.Fatalf("stage %d not recorded", i)
		}
		if g.Stages[i+1].Out < 0 {
			t.Fatalf("stage %d has no output op", i)
		}
	}
	// Static level inference: the output sits Depth rescales below the top.
	out := g.Ops[g.Output]
	if want := e.MaxLevel() - plan.Depth; out.Level != want {
		t.Fatalf("output level %d, want %d", out.Level, want)
	}
	st := g.Stats()
	if st.ByKind[ir.OpEncrypt] != 1 {
		t.Fatalf("%d encrypts, want 1", st.ByKind[ir.OpEncrypt])
	}
	if st.ByKind[ir.OpMulPlain] == 0 || st.ByKind[ir.OpRotate] == 0 || st.ByKind[ir.OpRescale] == 0 {
		t.Fatalf("implausible op mix: %+v", st.ByKind)
	}
	if st.Hoists == 0 {
		t.Fatal("no hoist groups lowered from RotateMany")
	}
}

func TestLowerRNSPlan(t *testing.T) {
	m := tinyModel(1)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewRNSPlan(plan, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	g, err := rp.Lower(e)
	if err != nil {
		t.Fatal(err)
	}
	if g.Inputs != 3 {
		t.Fatalf("inputs %d, want 3", g.Inputs)
	}
	wantNames := []string{"encrypt part 0", "encrypt part 1", "encrypt part 2", "rns parts", "rns recompose"}
	for i, want := range wantNames {
		if g.Stages[i].Name != want {
			t.Fatalf("stage %d = %q, want %q", i, g.Stages[i].Name, want)
		}
	}
	if got, want := len(g.Stages), len(wantNames)+len(plan.Stages)-1; got != want {
		t.Fatalf("%d stages, want %d", got, want)
	}
	st := g.Stats()
	if st.ByKind[ir.OpEncrypt] != 3 {
		t.Fatalf("%d encrypts, want 3", st.ByKind[ir.OpEncrypt])
	}
	if st.ByKind[ir.OpRecombine] != 1 {
		t.Fatalf("%d recombines, want 1", st.ByKind[ir.OpRecombine])
	}
	var rec ir.Op
	for _, op := range g.Ops {
		if op.Kind == ir.OpRecombine {
			rec = op
		}
	}
	if len(rec.Args) != 3 || rec.Weights[0] != 1 {
		t.Fatalf("recombine op %+v", rec)
	}
	w := rp.Digits.Weights()
	for i, wi := range rec.Weights {
		if wi != int64(w[i]) {
			t.Fatalf("weight %d = %d, want %d", i, wi, int64(w[i]))
		}
	}
}

func TestLowerDepthExhausted(t *testing.T) {
	m := tinyModel(1)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	// Two levels for a depth-4 plan: lowering must fail cleanly, not panic.
	p, err := ckks.NewParameters(10, []int{40, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewRNSEngine(p, plan.Rotations(), 501)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Lower(e); err == nil {
		t.Fatal("lowering a too-deep plan succeeded")
	} else if !strings.Contains(err.Error(), "level") {
		t.Fatalf("unexpected error: %v", err)
	}
}
