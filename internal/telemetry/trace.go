package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"
)

// OpSpan is one recorded unit of executor work: a single HE op, or a
// whole hoisted rotation group executed as one RotateMany call.
type OpSpan struct {
	// Kind is the op kind ("Rotate", "MulPlain", …, or "Encrypt"). A
	// hoisted group records kind "Rotate" with Ops > 1.
	Kind string
	// Stage is the pipeline stage the op belongs to.
	Stage string
	// Worker identifies the executing worker (0 for sequential runs and
	// the encrypt prologue).
	Worker int
	// Queued is when the op's task became runnable (zero when the run was
	// sequential: there is no queue).
	Queued time.Time
	// Start and End bound the engine call.
	Start time.Time
	End   time.Time
	// Ops is the number of logical ops this span covers (hoist group
	// size; 1 otherwise).
	Ops int
	// SavedKeySwitch counts the key-switch decompositions a hoisted
	// RotateMany avoided versus standalone rotations (group size − 1).
	SavedKeySwitch int
	// Level, Scale, and NoiseBits describe the op's output ciphertext
	// when the executor could observe it (guard-wrapped engines under an
	// active recorder): remaining modulus level, plaintext scale, and the
	// guard's noise-budget estimate in bits. A zero Scale marks the
	// triple as unobserved (every real CKKS ciphertext has Scale ≥ 1).
	Level     int
	Scale     float64
	NoiseBits float64
}

// HasHE reports whether the span carries observed ciphertext
// attributes (level / scale / noise budget).
func (s OpSpan) HasHE() bool { return s.Scale > 0 }

// Wait returns the queue wait (zero when the span was never queued).
func (s OpSpan) Wait() time.Duration {
	if s.Queued.IsZero() || s.Queued.After(s.Start) {
		return 0
	}
	return s.Start.Sub(s.Queued)
}

// Phase is one coarse pipeline phase span (encrypt / eval / decrypt).
type Phase struct {
	Name  string
	Start time.Time
	End   time.Time
}

// KindStat aggregates spans per op kind.
type KindStat struct {
	// Count is the number of logical ops (hoisted rotations count
	// individually).
	Count int64
	// Calls is the number of engine calls (a hoist group is one call).
	Calls int64
	// Total is the summed execution time of the calls.
	Total time.Duration
}

// RunRecorder collects the spans of one (or more) executor runs. Attach
// it to a context with WithRecorder and pass that context to InferCtx /
// Run; the executor records one span per executed op. All methods are
// nil-safe and safe for concurrent use.
type RunRecorder struct {
	mu      sync.Mutex
	spans   []OpSpan
	phases  []Phase
	traceID string
	reqID   string
}

// SetTrace attaches the distributed-trace identity the recording
// belongs to; it is echoed into the Chrome trace metadata so an
// exported span tree can be joined back to client logs.
func (r *RunRecorder) SetTrace(traceID, requestID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.traceID, r.reqID = traceID, requestID
	r.mu.Unlock()
}

// TraceID returns the trace ID set by SetTrace ("" when unset).
func (r *RunRecorder) TraceID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// RequestID returns the request ID set by SetTrace ("" when unset).
func (r *RunRecorder) RequestID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reqID
}

// NewRunRecorder returns an empty recorder.
func NewRunRecorder() *RunRecorder { return &RunRecorder{} }

// Record appends one op span.
func (r *RunRecorder) Record(sp OpSpan) {
	if r == nil {
		return
	}
	if sp.Ops <= 0 {
		sp.Ops = 1
	}
	r.mu.Lock()
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
}

// RecordPhase appends one coarse phase span.
func (r *RunRecorder) RecordPhase(name string, start, end time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.phases = append(r.phases, Phase{Name: name, Start: start, End: end})
	r.mu.Unlock()
}

// Spans returns a copy of the recorded op spans, ordered by start time.
func (r *RunRecorder) Spans() []OpSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]OpSpan(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Phases returns a copy of the recorded phase spans in record order.
func (r *RunRecorder) Phases() []Phase {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Phase(nil), r.phases...)
}

// OpCount returns the number of logical ops recorded (hoisted rotations
// count individually).
func (r *RunRecorder) OpCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, sp := range r.spans {
		n += sp.Ops
	}
	return n
}

// ByKind aggregates the recorded spans per op kind.
func (r *RunRecorder) ByKind() map[string]KindStat {
	out := map[string]KindStat{}
	for _, sp := range r.Spans() {
		st := out[sp.Kind]
		st.Count += int64(sp.Ops)
		st.Calls++
		st.Total += sp.End.Sub(sp.Start)
		out[sp.Kind] = st
	}
	return out
}

// ----- context plumbing -----

type recorderKey struct{}

// WithRecorder returns a context carrying rec; the executor records into
// it. A nil rec returns ctx unchanged.
func WithRecorder(ctx context.Context, rec *RunRecorder) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey{}, rec)
}

// RecorderFrom extracts the recorder attached by WithRecorder (nil when
// absent).
func RecorderFrom(ctx context.Context) *RunRecorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(recorderKey{}).(*RunRecorder)
	return rec
}

// ----- Chrome trace-event export -----

// chromeEvent is one trace event in the Chrome trace-event JSON format
// (the "X" complete-event and "M" metadata-event subset), loadable in
// chrome://tracing and https://ui.perfetto.dev.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds from trace start
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace envelope.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// phaseTID is the synthetic "thread" row that carries pipeline phase
// spans (encrypt / eval / decrypt) above the worker rows.
const phaseTID = 999

// ChromeTrace serialises the recording as Chrome trace-event JSON.
// Timestamps are microseconds relative to the earliest recorded instant,
// op spans land on one row per worker (queue wait rendered as a separate
// dimmed span immediately before the op), and pipeline phases form their
// own row.
func (r *RunRecorder) ChromeTrace() ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("telemetry: nil recorder")
	}
	spans := r.Spans()
	phases := r.Phases()

	var base time.Time
	for _, sp := range spans {
		t := sp.Start
		if !sp.Queued.IsZero() && sp.Queued.Before(t) {
			t = sp.Queued
		}
		if base.IsZero() || t.Before(base) {
			base = t
		}
	}
	for _, p := range phases {
		if base.IsZero() || p.Start.Before(base) {
			base = p.Start
		}
	}
	us := func(t time.Time) float64 { return float64(t.Sub(base)) / float64(time.Microsecond) }

	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", PID: 1, Args: map[string]any{"name": "cnnhe"}},
		{Name: "thread_name", Ph: "M", PID: 1, TID: phaseTID, Args: map[string]any{"name": "pipeline"}},
	}}
	if traceID := r.TraceID(); traceID != "" {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "trace_context", Ph: "M", PID: 1,
			Args: map[string]any{"trace_id": traceID, "request_id": r.RequestID()},
		})
	}
	workers := map[int]bool{}
	for _, sp := range spans {
		if !workers[sp.Worker] {
			workers[sp.Worker] = true
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: sp.Worker,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", sp.Worker)},
			})
		}
		if w := sp.Wait(); w > 0 {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "queue-wait", Cat: "wait", Ph: "X",
				TS: us(sp.Queued), Dur: float64(w) / float64(time.Microsecond),
				PID: 1, TID: sp.Worker,
				Args: map[string]any{"for": sp.Kind},
			})
		}
		name := sp.Kind
		args := map[string]any{"stage": sp.Stage, "ops": sp.Ops}
		if sp.Ops > 1 {
			name = fmt.Sprintf("%s×%d", sp.Kind, sp.Ops)
		}
		if sp.SavedKeySwitch > 0 {
			args["saved_keyswitch"] = sp.SavedKeySwitch
		}
		if sp.HasHE() {
			args["level"] = sp.Level
			args["scale"] = sp.Scale
			if !math.IsNaN(sp.NoiseBits) {
				args["noise_bits"] = sp.NoiseBits
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: name, Cat: "op", Ph: "X",
			TS: us(sp.Start), Dur: float64(sp.End.Sub(sp.Start)) / float64(time.Microsecond),
			PID: 1, TID: sp.Worker, Args: args,
		})
	}
	for _, p := range phases {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: p.Name, Cat: "phase", Ph: "X",
			TS: us(p.Start), Dur: float64(p.End.Sub(p.Start)) / float64(time.Microsecond),
			PID: 1, TID: phaseTID,
		})
	}
	return json.MarshalIndent(tr, "", " ")
}

// WriteChromeTrace writes the Chrome trace-event JSON to w.
func (r *RunRecorder) WriteChromeTrace(w io.Writer) error {
	data, err := r.ChromeTrace()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteChromeTraceFile writes the Chrome trace-event JSON to path.
func (r *RunRecorder) WriteChromeTraceFile(path string) error {
	data, err := r.ChromeTrace()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
