package opt

import (
	"math"
	"strings"
	"testing"

	"cnnhe/internal/henn/ir"
)

type fakeParams struct{}

func (fakeParams) MaxLevel() int             { return 7 }
func (fakeParams) Scale() float64            { return math.Exp2(26) }
func (fakeParams) QiFloat(level int) float64 { return math.Exp2(26) }

// Op constructors for synthetic graphs. Hoist defaults to -1; levels and
// scales are filled by reinfer in mk.
func enc(idx int) ir.Op { return ir.Op{Kind: ir.OpEncrypt, InputIdx: idx, Hoist: -1} }
func rot(arg, k, hoist int) ir.Op {
	return ir.Op{Kind: ir.OpRotate, Args: []int{arg}, K: k, Hoist: hoist}
}
func mulp(arg int, v []float64, scale float64) ir.Op {
	return ir.Op{Kind: ir.OpMulPlain, Args: []int{arg}, Plain: v, PtScale: scale, Hoist: -1}
}
func addp(arg int, v []float64) ir.Op {
	return ir.Op{Kind: ir.OpAddPlain, Args: []int{arg}, Plain: v, Hoist: -1}
}
func add(a, b int) ir.Op  { return ir.Op{Kind: ir.OpAdd, Args: []int{a, b}, Hoist: -1} }
func resc(a int) ir.Op    { return ir.Op{Kind: ir.OpRescale, Args: []int{a}, Hoist: -1} }
func drop(a, n int) ir.Op { return ir.Op{Kind: ir.OpDropLevel, Args: []int{a}, Drop: n, Hoist: -1} }
func recomb(args []int, w []int64) ir.Op {
	return ir.Op{Kind: ir.OpRecombine, Args: args, Weights: w, Hoist: -1}
}

// mk assembles a one-stage graph, infers levels/scales, and validates.
func mk(t *testing.T, output int, hoists [][]int, ops ...ir.Op) *ir.Graph {
	t.Helper()
	inputs := 1
	for i := range ops {
		ops[i].ID = i
		if ops[i].Kind == ir.OpEncrypt && ops[i].InputIdx >= inputs {
			inputs = ops[i].InputIdx + 1
		}
	}
	g := &ir.Graph{
		Slots:  4,
		Inputs: inputs,
		Ops:    ops,
		Output: output,
		Stages: []ir.StageInfo{{Name: "s", Out: output, Record: true}},
		Hoists: hoists,
	}
	if err := reinfer(fakeParams{}, g); err != nil {
		t.Fatalf("reinfer: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return g
}

func run(t *testing.T, fn passFunc, g *ir.Graph, exact bool) *ir.Graph {
	t.Helper()
	out, err := fn(g, fakeParams{}, exact)
	if err != nil {
		t.Fatalf("pass: %v", err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("pass output invalid: %v", err)
	}
	return out
}

func TestCSEMergesDuplicateRotations(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	// Two singleton hoist groups rotating the same source by the same k,
	// plus a duplicated MulPlain — all collapse; the add becomes (x, x).
	g := mk(t, 5, [][]int{{1}, {2}},
		enc(0),
		rot(0, 1, 0),
		rot(0, 1, 1),
		mulp(1, v, math.Exp2(26)),
		mulp(2, v, math.Exp2(26)),
		add(3, 4),
	)
	out := run(t, passCSE, g, true)
	if got := out.Stats(); got.ByKind[ir.OpRotate] != 1 || got.ByKind[ir.OpMulPlain] != 1 {
		t.Fatalf("want 1 rotate / 1 mulplain after CSE, got %s", got)
	}
	if len(out.Hoists) != 1 {
		t.Fatalf("want 1 hoist group, got %d", len(out.Hoists))
	}
}

func TestCSENeverMergesEncrypts(t *testing.T) {
	g := mk(t, 2, nil, enc(0), enc(0), add(0, 1))
	out := run(t, passCSE, g, true)
	if got := out.Stats().ByKind[ir.OpEncrypt]; got != 2 {
		t.Fatalf("encrypts must never merge (fresh randomness), got %d", got)
	}
}

func TestCSEKeepsStandaloneAndHoistedApart(t *testing.T) {
	// Same (source, k) but different key-switch algorithms: not mergeable.
	g := mk(t, 3, [][]int{{2}},
		enc(0),
		rot(0, 1, -1),
		rot(0, 1, 0),
		add(1, 2),
	)
	out := run(t, passCSE, g, true)
	if got := out.Stats().ByKind[ir.OpRotate]; got != 2 {
		t.Fatalf("standalone and hoisted rotations must not merge, got %d rotations", got)
	}
}

func TestCSEDistinguishesPlainContent(t *testing.T) {
	g := mk(t, 3, nil,
		enc(0),
		mulp(0, []float64{1, 2, 3, 4}, math.Exp2(26)),
		mulp(0, []float64{1, 2, 3, 5}, math.Exp2(26)),
		add(1, 2),
	)
	out := run(t, passCSE, g, true)
	if got := out.Stats().ByKind[ir.OpMulPlain]; got != 2 {
		t.Fatalf("different plaintext contents merged: %d mulplains", got)
	}
}

func TestDCEDropsUnreachableKeepsEncrypts(t *testing.T) {
	v := []float64{1, 1, 1, 1}
	g := mk(t, 3, nil,
		enc(0),
		enc(0),        // unused but pinned (PRNG call order)
		rot(1, 5, -1), // unreachable from output: dropped
		mulp(0, v, math.Exp2(26)),
	)
	out := run(t, passDCE, g, true)
	st := out.Stats()
	if st.ByKind[ir.OpEncrypt] != 2 {
		t.Fatalf("DCE dropped a pinned encrypt: %s", st)
	}
	if st.ByKind[ir.OpRotate] != 0 {
		t.Fatalf("DCE kept an unreachable rotation: %s", st)
	}
	if out.Stages[0].Out != out.Output {
		t.Fatalf("stage out not remapped: %d vs %d", out.Stages[0].Out, out.Output)
	}
}

func TestDCEKeepsStageOutputs(t *testing.T) {
	v := []float64{1, 1, 1, 1}
	g := mk(t, 2, nil,
		enc(0),
		mulp(0, v, math.Exp2(26)), // only referenced by an extra stage row
		mulp(0, v, math.Exp2(26)),
	)
	g.Stages = append(g.Stages, ir.StageInfo{Name: "extra", Out: 1, Record: true})
	out := run(t, passDCE, g, true)
	if got := out.Stats().ByKind[ir.OpMulPlain]; got != 2 {
		t.Fatalf("DCE dropped a stage output: %d mulplains", got)
	}
}

func TestReplanMergesSameSourceHoistGroups(t *testing.T) {
	// Two singleton groups over the same source merge into one fan-out;
	// the standalone rotation is untouched.
	g := mk(t, 5, [][]int{{1}, {2}},
		enc(0),
		rot(0, 1, 0),
		rot(0, 2, 1),
		rot(0, 3, -1),
		add(1, 2),
		add(4, 3),
	)
	out := run(t, passReplan, g, true)
	if len(out.Hoists) != 1 || len(out.Hoists[0]) != 2 {
		t.Fatalf("want one merged group of 2, got %v", out.Hoists)
	}
	var standalone int
	for _, op := range out.Ops {
		if op.Kind == ir.OpRotate && op.Hoist == -1 {
			standalone++
		}
	}
	if standalone != 1 {
		t.Fatalf("standalone rotation count changed: %d", standalone)
	}
	if got := out.Stats(); got.RotateCalls() != 2 {
		t.Fatalf("want 2 rotation calls (1 group + 1 standalone), got %d", got.RotateCalls())
	}
}

func TestReplanKeepsDifferentSourcesApart(t *testing.T) {
	g := mk(t, 4, [][]int{{2}, {3}},
		enc(0),
		enc(0),
		rot(0, 1, 0),
		rot(1, 1, 1),
		add(2, 3),
	)
	out := run(t, passReplan, g, true)
	if len(out.Hoists) != 2 {
		t.Fatalf("groups over different sources merged: %v", out.Hoists)
	}
}

func TestRescaleSinkPastAdd(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	g := mk(t, 5, nil,
		enc(0),
		mulp(0, v, math.Exp2(26)),
		mulp(0, v, math.Exp2(26)),
		resc(1),
		resc(2),
		add(3, 4),
	)
	out := run(t, passRescale, g, false)
	st := out.Stats()
	if st.ByKind[ir.OpRescale] != 1 {
		t.Fatalf("want 1 trailing rescale, got %s", st)
	}
	final := out.Ops[out.Output]
	if final.Kind != ir.OpRescale {
		t.Fatalf("output should be the trailing rescale, got %v", final.Kind)
	}
	if sum := out.Ops[final.Args[0]]; sum.Kind != ir.OpAdd {
		t.Fatalf("trailing rescale should wrap the sum, got %v", sum.Kind)
	}
	if final.Level != 6 || !scaleClose(final.Scale, math.Exp2(26)) {
		t.Fatalf("trailing rescale at (level %d, scale 2^%.2f)", final.Level, math.Log2(final.Scale))
	}
}

func TestRescaleSinkSkippedInExactMode(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	g := mk(t, 5, nil,
		enc(0),
		mulp(0, v, math.Exp2(26)),
		mulp(0, v, math.Exp2(26)),
		resc(1),
		resc(2),
		add(3, 4),
	)
	out := run(t, passRescale, g, true)
	if got := out.Stats().ByKind[ir.OpRescale]; got != 2 {
		t.Fatalf("rescale sink must not fire in exact mode, got %d rescales", got)
	}
}

func TestDropLevelSinkIsExact(t *testing.T) {
	g := mk(t, 4, nil,
		enc(0),
		drop(0, 2),
		drop(0, 2),
		add(1, 2),
		rot(3, 1, -1),
	)
	out := run(t, passRescale, g, true) // exact mode: droplevel sink still fires
	st := out.Stats()
	if st.ByKind[ir.OpDropLevel] != 1 {
		t.Fatalf("want 1 trailing droplevel, got %s", st)
	}
	if st.MinLevel != 5 {
		t.Fatalf("level inference after sink: min level %d, want 5", st.MinLevel)
	}
}

func TestRescaleSinkSkipsSharedArgs(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	g := mk(t, 5, nil,
		enc(0),
		mulp(0, v, math.Exp2(26)),
		mulp(0, v, math.Exp2(26)),
		resc(1),
		resc(2),
		add(3, 4),
	)
	// A second consumer of one rescale blocks the sink (use > 1).
	g.Ops = append(g.Ops, rot(3, 1, -1))
	g.Ops[len(g.Ops)-1].ID = len(g.Ops) - 1
	g.Ops[len(g.Ops)-1].Stage = 0
	if err := reinfer(fakeParams{}, g); err != nil {
		t.Fatal(err)
	}
	out := run(t, passRescale, g, false)
	if got := out.Stats().ByKind[ir.OpRescale]; got != 2 {
		t.Fatalf("sink fired through a shared rescale: %d rescales", got)
	}
}

func TestRescaleSinkRepointsStageRows(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	g := mk(t, 5, nil,
		enc(0),
		mulp(0, v, math.Exp2(26)),
		mulp(0, v, math.Exp2(26)),
		resc(1),
		resc(2),
		add(3, 4),
	)
	// A stage row on a sunk rescale follows the trailing op (the rns
	// parts / recompose shape).
	g.Stages = append(g.Stages, ir.StageInfo{Name: "parts", Out: 3, Record: true})
	out := run(t, passRescale, g, false)
	if out.Stages[1].Out != out.Output {
		t.Fatalf("sunk stage row not re-pointed at trailing op: %d vs %d",
			out.Stages[1].Out, out.Output)
	}
}

func TestFoldDropsZeroAddPlain(t *testing.T) {
	g := mk(t, 2, nil,
		enc(0),
		addp(0, []float64{0, 0, 0, 0}),
		rot(1, 1, -1),
	)
	out := run(t, passFold, g, true) // exact: zero-add elision is bit-exact
	if got := out.Stats().ByKind[ir.OpAddPlain]; got != 0 {
		t.Fatalf("zero AddPlain survived: %d", got)
	}
	if out.Ops[out.Ops[out.Output].Args[0]].Kind != ir.OpEncrypt {
		t.Fatal("rotation not re-pointed at the encrypt")
	}
}

func TestFoldMergesPlainChains(t *testing.T) {
	s := math.Exp2(26)
	g := mk(t, 4, nil,
		enc(0),
		mulp(0, []float64{2, 2, 2, 2}, s),
		mulp(1, []float64{3, 3, 3, 3}, s),
		addp(2, []float64{1, 1, 1, 1}),
		addp(3, []float64{4, 4, 4, 4}),
	)
	out := run(t, passFold, g, false)
	st := out.Stats()
	if st.ByKind[ir.OpMulPlain] != 1 || st.ByKind[ir.OpAddPlain] != 1 {
		t.Fatalf("chains not merged: %s", st)
	}
	var mp, ap *ir.Op
	for i := range out.Ops {
		switch out.Ops[i].Kind {
		case ir.OpMulPlain:
			mp = &out.Ops[i]
		case ir.OpAddPlain:
			ap = &out.Ops[i]
		}
	}
	if mp.Plain[0] != 6 || mp.PtScale != s*s {
		t.Fatalf("mulplain merge wrong: v=%v scale=2^%.0f", mp.Plain[0], math.Log2(mp.PtScale))
	}
	if ap.Plain[0] != 5 {
		t.Fatalf("addplain merge wrong: %v", ap.Plain[0])
	}
}

func TestFoldMergesLongChains(t *testing.T) {
	// A ≥3-long same-kind chain: each fixpoint round must absorb only
	// ops whose consumer is actually emitted that round (an absorber
	// must never itself be absorbed, or its consumer merges against a
	// dropped op). Collapses fully over iterations.
	g := mk(t, 4, nil,
		enc(0),
		addp(0, []float64{1, 1, 1, 1}),
		addp(1, []float64{2, 2, 2, 2}),
		addp(2, []float64{3, 3, 3, 3}),
		addp(3, []float64{4, 4, 4, 4}),
	)
	out := run(t, passFold, g, false)
	if got := out.Stats().ByKind[ir.OpAddPlain]; got != 1 {
		t.Fatalf("4-long chain not fully merged: %d addplains", got)
	}
	if final := out.Ops[out.Output]; final.Plain[0] != 10 {
		t.Fatalf("merged constant %v, want 10", final.Plain[0])
	}

	s := math.Exp2(26)
	g2 := mk(t, 3, nil,
		enc(0),
		mulp(0, []float64{2, 2, 2, 2}, s),
		mulp(1, []float64{3, 3, 3, 3}, s),
		mulp(2, []float64{4, 4, 4, 4}, s),
	)
	out2 := run(t, passFold, g2, false)
	if got := out2.Stats().ByKind[ir.OpMulPlain]; got != 1 {
		t.Fatalf("3-long mul chain not fully merged: %d mulplains", got)
	}
	if final := out2.Ops[out2.Output]; final.Plain[0] != 24 || !scaleClose(final.PtScale, s*s*s) {
		t.Fatalf("merged product %v at scale 2^%.0f, want 24 at 2^78",
			final.Plain[0], math.Log2(final.PtScale))
	}
}

func TestFoldKeepsStageOutputChainOps(t *testing.T) {
	// The inner op of a foldable chain is a recorded stage output:
	// absorbing it would leave the stage row dangling, so it must stay.
	g := mk(t, 2, nil,
		enc(0),
		addp(0, []float64{1, 1, 1, 1}),
		addp(1, []float64{2, 2, 2, 2}),
	)
	g.Stages = append(g.Stages, ir.StageInfo{Name: "mid", Out: 1, Record: true})
	out := run(t, passFold, g, false)
	if got := out.Stats().ByKind[ir.OpAddPlain]; got != 2 {
		t.Fatalf("stage-output chain op folded away: %d addplains", got)
	}
	mid := out.Ops[out.Stages[1].Out]
	if mid.Kind != ir.OpAddPlain || mid.Plain[0] != 1 {
		t.Fatalf("stage row points at %v (plain %v), want the original AddPlain", mid.Kind, mid.Plain)
	}
}

func TestFoldChainMergeSkippedInExactMode(t *testing.T) {
	g := mk(t, 2, nil,
		enc(0),
		addp(0, []float64{1, 1, 1, 1}),
		addp(1, []float64{4, 4, 4, 4}),
	)
	out := run(t, passFold, g, true)
	if got := out.Stats().ByKind[ir.OpAddPlain]; got != 2 {
		t.Fatalf("chain merge fired in exact mode: %d addplains", got)
	}
}

func TestFuseReductionTree(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	s := math.Exp2(26)
	g := mk(t, 7, nil,
		enc(0),
		mulp(0, v, s),
		mulp(0, []float64{2, 2, 2, 2}, s),
		mulp(0, []float64{3, 3, 3, 3}, s),
		mulp(0, []float64{4, 4, 4, 4}, s),
		add(1, 2),
		add(5, 3),
		add(6, 4),
	)
	out := run(t, passFuse, g, true)
	st := out.Stats()
	if st.ByKind[ir.OpAdd] != 0 || st.ByKind[ir.OpRecombine] != 1 {
		t.Fatalf("tree not fused: %s", st)
	}
	rc := out.Ops[out.Output]
	if len(rc.Args) != 4 {
		t.Fatalf("fused recombine has %d leaves, want 4", len(rc.Args))
	}
	for i, w := range rc.Weights {
		if w != 1 {
			t.Fatalf("weight[%d] = %d, want 1", i, w)
		}
	}
	// 3 add calls become 1 fused call.
	if before, after := g.Stats().EngineCalls, st.EngineCalls; after != before-2 {
		t.Fatalf("engine calls %d → %d, want a 2-call saving", before, after)
	}
}

func TestFuseAccumulatesNestedWeights(t *testing.T) {
	v := []float64{1, 1, 1, 1}
	s := math.Exp2(26)
	g := mk(t, 5, nil,
		enc(0),
		mulp(0, v, s),
		mulp(0, []float64{2, 2, 2, 2}, s),
		mulp(0, []float64{3, 3, 3, 3}, s),
		recomb([]int{1, 2}, []int64{1, 5}),
		add(4, 3),
	)
	out := run(t, passFuse, g, true)
	rc := out.Ops[out.Output]
	if rc.Kind != ir.OpRecombine || len(rc.Args) != 3 {
		t.Fatalf("nested recombine not fused: %+v", rc)
	}
	want := []int64{1, 5, 1}
	for i, w := range rc.Weights {
		if w != want[i] {
			t.Fatalf("weights %v, want %v", rc.Weights, want)
		}
	}
}

func TestFuseLeavesSmallAndSharedTreesAlone(t *testing.T) {
	v := []float64{1, 1, 1, 1}
	s := math.Exp2(26)
	// Two leaves only: below the fusion threshold.
	g := mk(t, 3, nil, enc(0), mulp(0, v, s), mulp(0, []float64{2, 2, 2, 2}, s), add(1, 2))
	out := run(t, passFuse, g, true)
	if got := out.Stats().ByKind[ir.OpAdd]; got != 1 {
		t.Fatalf("2-leaf add fused: %s", out.Stats())
	}
	// Interior node that is also a stage output: must stay materialized.
	g2 := mk(t, 6, nil,
		enc(0),
		mulp(0, v, s),
		mulp(0, []float64{2, 2, 2, 2}, s),
		mulp(0, []float64{3, 3, 3, 3}, s),
		add(1, 2),
		add(4, 3),
		rot(5, 1, -1),
	)
	g2.Stages = append(g2.Stages, ir.StageInfo{Name: "mid", Out: 4, Record: true})
	out2 := run(t, passFuse, g2, true)
	found := false
	for _, op := range out2.Ops {
		if op.ID == out2.Stages[1].Out && op.Kind == ir.OpAdd {
			found = true
		}
	}
	if !found {
		t.Fatalf("stage-output add was absorbed: %s", out2.Stats())
	}
}

func TestOptimizeOffReturnsInputGraph(t *testing.T) {
	g := mk(t, 1, nil, enc(0), rot(0, 1, -1))
	res, err := Optimize(fakeParams{}, g, Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != g {
		t.Fatal("-opt=off must return the input graph unchanged")
	}
	if res.Setting != "off" {
		t.Fatalf("setting %q", res.Setting)
	}
}

func TestOptimizeDefaultPipeline(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	s := math.Exp2(26)
	g := mk(t, 8, [][]int{{1}, {2}},
		enc(0),
		rot(0, 1, 0),
		rot(0, 1, 1), // CSE dup of op 1
		mulp(1, v, s),
		mulp(2, v, s), // becomes dup after CSE
		add(3, 4),
		addp(5, []float64{0, 0, 0, 0}), // zero add: folded away
		rot(0, 9, -1),                  // dead standalone rotation
		resc(6),
	)
	res, err := Optimize(fakeParams{}, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Passes) != len(DefaultPasses) {
		t.Fatalf("ran %d passes, want %d", len(res.Passes), len(DefaultPasses))
	}
	st := res.Graph.Stats()
	if st.ByKind[ir.OpRotate] != 1 || st.ByKind[ir.OpMulPlain] != 1 || st.ByKind[ir.OpAddPlain] != 0 {
		t.Fatalf("pipeline result: %s", st)
	}
	if res.After.Ops >= res.Before.Ops {
		t.Fatalf("no reduction: %d → %d", res.Before.Ops, res.After.Ops)
	}
	if !strings.Contains(res.Summary(), "ops") {
		t.Fatalf("summary: %q", res.Summary())
	}
}

func TestOptimizeRejectsUnknownPass(t *testing.T) {
	g := mk(t, 1, nil, enc(0), rot(0, 1, -1))
	if _, err := Optimize(fakeParams{}, g, &Options{Passes: []string{"nope"}}); err == nil {
		t.Fatal("unknown pass accepted")
	}
}

func TestParseFlag(t *testing.T) {
	if o, err := ParseFlag("on"); err != nil || o != nil {
		t.Fatalf("on: %v %v", o, err)
	}
	if o, err := ParseFlag("off"); err != nil || !o.Off {
		t.Fatalf("off: %v %v", o, err)
	}
	if o, err := ParseFlag("exact"); err != nil || !o.Exact {
		t.Fatalf("exact: %v %v", o, err)
	}
	o, err := ParseFlag("cse,dce")
	if err != nil || len(o.Passes) != 2 {
		t.Fatalf("list: %v %v", o, err)
	}
	if _, err := ParseFlag("cse,bogus"); err == nil {
		t.Fatal("bogus pass accepted")
	}
	if got := o.Setting(); got != "on (cse,dce)" {
		t.Fatalf("setting %q", got)
	}
	if got := (&Options{Exact: true}).Setting(); got != "exact (cse,fold,replan,rescale,fuse,dce)" {
		t.Fatalf("setting %q", got)
	}
	var none *Options
	if got := none.Setting(); got != "on (cse,fold,replan,rescale,fuse,dce)" {
		t.Fatalf("nil setting %q", got)
	}
}
