// Package faults provides seeded, deterministic fault injection for the
// homomorphic inference engines. An Injector wraps a henn.Engine and
// fires exactly one configured fault at a chosen engine op, simulating
// the corruption classes the guarded runtime (internal/guard) must
// detect and classify:
//
//	CorruptLimb — overwrite one coefficient of the op's output with an
//	              out-of-range value (a flipped word ≥ q_i on the RNS
//	              backend, a negative residue on the multiprecision one);
//	DropResidue — remove a residue the ciphertext's level requires (nil
//	              an RNS limb, nil a multiprecision coefficient);
//	SkewScale   — multiply the output's scale metadata by SkewFactor,
//	              desynchronising it from the actual encoding;
//	PanicOp     — panic inside the op, as a buggy backend would;
//	DelayOp     — sleep Delay inside the op, stalling the stage past a
//	              caller's deadline.
//
// Injection is deterministic: the corrupted position is derived from
// Seed, and the fault fires on the Nth call matching Op. Compose as
//
//	g := guard.New(faults.Wrap(engine, inj), cfg)
//
// so the guard observes the faulty backend exactly as it would a
// hardware error, serialization bug, or scheduling stall.
package faults

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// CorruptLimb overwrites one output coefficient with an out-of-range value.
	CorruptLimb Kind = iota
	// DropResidue removes a residue required at the ciphertext's level.
	DropResidue
	// SkewScale multiplies the output's scale metadata by SkewFactor.
	SkewScale
	// PanicOp panics inside the chosen op.
	PanicOp
	// DelayOp sleeps Delay inside the chosen op.
	DelayOp
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CorruptLimb:
		return "corrupt-limb"
	case DropResidue:
		return "drop-residue"
	case SkewScale:
		return "skew-scale"
	case PanicOp:
		return "panic-op"
	case DelayOp:
		return "delay-op"
	}
	return fmt.Sprintf("faults.Kind(%d)", int(k))
}

// Injection configures a single fault.
type Injection struct {
	// Kind selects the fault class.
	Kind Kind
	// Op names the engine op to fire on ("MulRelin", "Rescale", ...).
	// Empty matches every intercepted op.
	Op string
	// Nth fires on the n-th matching call, 1-based; 0 means the first.
	Nth int
	// Seed determines the corrupted limb/coefficient position.
	Seed int64
	// Delay is the stall duration for DelayOp.
	Delay time.Duration
	// SkewFactor is the scale multiplier for SkewScale (default 1.01).
	SkewFactor float64
}

// Injector is a henn.Engine middleware that fires one configured fault.
// It is safe for concurrent use (matching the engines' concurrency
// contract); the fault fires exactly once.
type Injector struct {
	inner henn.Engine
	inj   Injection

	mu      sync.Mutex
	matched int
	fired   bool
}

// Wrap returns an Injector delivering inj on top of e.
func Wrap(e henn.Engine, inj Injection) *Injector {
	if inj.Nth <= 0 {
		inj.Nth = 1
	}
	if inj.SkewFactor == 0 {
		inj.SkewFactor = 1.01
	}
	return &Injector{inner: e, inj: inj}
}

// Unwrap exposes the wrapped engine so diagnostics (and guard parameter
// discovery) can reach the base backend.
func (f *Injector) Unwrap() henn.Engine { return f.inner }

// Fired reports whether the fault has been delivered.
func (f *Injector) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// arm records a call to op and reports whether the fault fires on it.
func (f *Injector) arm(op string) bool {
	if f.inj.Op != "" && f.inj.Op != op {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fired {
		return false
	}
	f.matched++
	if f.matched != f.inj.Nth {
		return false
	}
	f.fired = true
	return true
}

// do intercepts one ct-returning op invocation.
func (f *Injector) do(op string, call func() henn.Ct) henn.Ct {
	fire := f.arm(op)
	if fire {
		switch f.inj.Kind {
		case PanicOp:
			panic(fmt.Sprintf("faults: injected panic in %s", op))
		case DelayOp:
			time.Sleep(f.inj.Delay)
		}
	}
	ct := call()
	if fire {
		f.mutate(ct)
	}
	return ct
}

// mutate applies the configured in-place corruption to ct.
func (f *Injector) mutate(ct henn.Ct) {
	switch f.inj.Kind {
	case CorruptLimb:
		switch c := ct.(type) {
		case *ckks.Ciphertext:
			limb := int(f.inj.Seed) % (c.Level + 1)
			if limb < 0 {
				limb += c.Level + 1
			}
			coeffs := c.C0.Coeffs[limb]
			j := int(f.inj.Seed) % len(coeffs)
			if j < 0 {
				j += len(coeffs)
			}
			coeffs[j] = ^uint64(0) // ≥ every q_i (moduli are < 2^62 per word)
		case *ckksbig.Ciphertext:
			j := int(f.inj.Seed) % len(c.C0.Coeffs)
			if j < 0 {
				j += len(c.C0.Coeffs)
			}
			c.C0.Coeffs[j] = big.NewInt(-1) // negative residue: unrepresentable
		}
	case DropResidue:
		switch c := ct.(type) {
		case *ckks.Ciphertext:
			limb := int(f.inj.Seed) % (c.Level + 1)
			if limb < 0 {
				limb += c.Level + 1
			}
			c.C1.Coeffs[limb] = nil
		case *ckksbig.Ciphertext:
			j := int(f.inj.Seed) % len(c.C1.Coeffs)
			if j < 0 {
				j += len(c.C1.Coeffs)
			}
			c.C1.Coeffs[j] = nil
		}
	case SkewScale:
		switch c := ct.(type) {
		case *ckks.Ciphertext:
			c.Scale *= f.inj.SkewFactor
		case *ckksbig.Ciphertext:
			c.Scale *= f.inj.SkewFactor
		}
	}
}

// ----- henn.Engine implementation -----

// Name implements henn.Engine.
func (f *Injector) Name() string { return f.inner.Name() }

// Slots implements henn.Engine.
func (f *Injector) Slots() int { return f.inner.Slots() }

// MaxLevel implements henn.Engine.
func (f *Injector) MaxLevel() int { return f.inner.MaxLevel() }

// Scale implements henn.Engine.
func (f *Injector) Scale() float64 { return f.inner.Scale() }

// QiFloat implements henn.Engine.
func (f *Injector) QiFloat(level int) float64 { return f.inner.QiFloat(level) }

// Level implements henn.Engine.
func (f *Injector) Level(ct henn.Ct) int { return f.inner.Level(ct) }

// ScaleOf implements henn.Engine.
func (f *Injector) ScaleOf(ct henn.Ct) float64 { return f.inner.ScaleOf(ct) }

// EncryptVec implements henn.Engine.
func (f *Injector) EncryptVec(values []float64) henn.Ct {
	return f.do("EncryptVec", func() henn.Ct { return f.inner.EncryptVec(values) })
}

// DecryptVec implements henn.Engine. Only PanicOp and DelayOp apply
// (there is no ciphertext output to corrupt).
func (f *Injector) DecryptVec(ct henn.Ct) []float64 {
	const op = "DecryptVec"
	if f.inj.Kind == PanicOp || f.inj.Kind == DelayOp {
		if f.arm(op) {
			if f.inj.Kind == PanicOp {
				panic(fmt.Sprintf("faults: injected panic in %s", op))
			}
			time.Sleep(f.inj.Delay)
		}
	}
	return f.inner.DecryptVec(ct)
}

// Add implements henn.Engine.
func (f *Injector) Add(a, b henn.Ct) henn.Ct {
	return f.do("Add", func() henn.Ct { return f.inner.Add(a, b) })
}

// AddPlainVec implements henn.Engine.
func (f *Injector) AddPlainVec(ct henn.Ct, v []float64) henn.Ct {
	return f.do("AddPlainVec", func() henn.Ct { return f.inner.AddPlainVec(ct, v) })
}

// AddPlainVecCached implements henn.Engine.
func (f *Injector) AddPlainVecCached(ct henn.Ct, key string, v []float64) henn.Ct {
	return f.do("AddPlainVecCached", func() henn.Ct { return f.inner.AddPlainVecCached(ct, key, v) })
}

// MulPlainVecAtScale implements henn.Engine.
func (f *Injector) MulPlainVecAtScale(ct henn.Ct, v []float64, scale float64) henn.Ct {
	return f.do("MulPlainVecAtScale", func() henn.Ct { return f.inner.MulPlainVecAtScale(ct, v, scale) })
}

// MulPlainVecCached implements henn.Engine.
func (f *Injector) MulPlainVecCached(ct henn.Ct, key string, v []float64, scale float64) henn.Ct {
	return f.do("MulPlainVecCached", func() henn.Ct { return f.inner.MulPlainVecCached(ct, key, v, scale) })
}

// MulRelin implements henn.Engine.
func (f *Injector) MulRelin(a, b henn.Ct) henn.Ct {
	return f.do("MulRelin", func() henn.Ct { return f.inner.MulRelin(a, b) })
}

// MulInt implements henn.Engine.
func (f *Injector) MulInt(ct henn.Ct, n int64) henn.Ct {
	return f.do("MulInt", func() henn.Ct { return f.inner.MulInt(ct, n) })
}

// Rescale implements henn.Engine.
func (f *Injector) Rescale(ct henn.Ct) henn.Ct {
	return f.do("Rescale", func() henn.Ct { return f.inner.Rescale(ct) })
}

// DropLevel implements henn.Engine.
func (f *Injector) DropLevel(ct henn.Ct, n int) henn.Ct {
	return f.do("DropLevel", func() henn.Ct { return f.inner.DropLevel(ct, n) })
}

// Rotate implements henn.Engine.
func (f *Injector) Rotate(ct henn.Ct, k int) henn.Ct {
	return f.do("Rotate", func() henn.Ct { return f.inner.Rotate(ct, k) })
}

// RotateMany implements henn.Engine. A firing mutation corrupts the
// output for the smallest non-zero rotation (deterministic choice).
func (f *Injector) RotateMany(ct henn.Ct, ks []int) map[int]henn.Ct {
	fire := f.arm("RotateMany")
	if fire {
		switch f.inj.Kind {
		case PanicOp:
			panic("faults: injected panic in RotateMany")
		case DelayOp:
			time.Sleep(f.inj.Delay)
		}
	}
	outs := f.inner.RotateMany(ct, ks)
	if fire {
		best := 0
		for k := range outs {
			if k != 0 && (best == 0 || k < best) {
				best = k
			}
		}
		if best != 0 {
			f.mutate(outs[best])
		}
	}
	return outs
}

// EncodeVecsAt implements henn.Engine. Plaintext encoding is not a fault
// target (the taxonomy corrupts ciphertexts and op behaviour), so the
// batch passes through without arming the injector — matching the legacy
// path, where the lazy encode inside MulPlainVecCached was likewise not
// intercepted separately.
func (f *Injector) EncodeVecsAt(specs []henn.PlainSpec) []henn.Pt {
	return f.inner.EncodeVecsAt(specs)
}

// MulPlainPt implements henn.Engine.
func (f *Injector) MulPlainPt(ct henn.Ct, pt henn.Pt) henn.Ct {
	return f.do("MulPlainPt", func() henn.Ct { return f.inner.MulPlainPt(ct, pt) })
}

// AddPlainPt implements henn.Engine.
func (f *Injector) AddPlainPt(ct henn.Ct, pt henn.Pt) henn.Ct {
	return f.do("AddPlainPt", func() henn.Ct { return f.inner.AddPlainPt(ct, pt) })
}

var _ henn.Engine = (*Injector)(nil)
