package ckks

import (
	"fmt"
	"math"
	"math/big"

	"cnnhe/internal/ring"
)

// Evaluator performs homomorphic operations. It holds the evaluation keys
// and scratch buffers; it is not safe for concurrent use (clone one
// evaluator per goroutine via ShallowCopy).
type Evaluator struct {
	ctx *Context
	rlk *RelinearizationKey
	rtk *RotationKeySet
}

// NewEvaluator returns an evaluator with the given keys (either may be nil
// when the corresponding operations are not used).
func NewEvaluator(ctx *Context, rlk *RelinearizationKey, rtk *RotationKeySet) *Evaluator {
	return &Evaluator{ctx: ctx, rlk: rlk, rtk: rtk}
}

// ShallowCopy returns an evaluator sharing keys but no scratch state, safe
// to use from another goroutine.
func (ev *Evaluator) ShallowCopy() *Evaluator {
	return &Evaluator{ctx: ev.ctx, rlk: ev.rlk, rtk: ev.rtk}
}

// scaleClose reports whether two scales agree to within 1 part in 2^40.
func scaleClose(a, b float64) bool {
	return math.Abs(a-b) <= math.Max(a, b)*math.Exp2(-40)
}

func (ev *Evaluator) checkPair(a, b *Ciphertext) int {
	if a.Level != b.Level {
		panic(fmt.Sprintf("ckks: level mismatch %d vs %d (use DropLevel)", a.Level, b.Level))
	}
	if !scaleClose(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: scale mismatch 2^%.4f vs 2^%.4f", math.Log2(a.Scale), math.Log2(b.Scale)))
	}
	return a.Level
}

// Add returns a + b.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	level := ev.checkPair(a, b)
	r := ev.ctx.R
	limbs := r.Limbs(level, false)
	out := &Ciphertext{C0: r.NewPolyQ(level), C1: r.NewPolyQ(level), Level: level, Scale: a.Scale}
	r.Add(limbs, a.C0, b.C0, out.C0)
	r.Add(limbs, a.C1, b.C1, out.C1)
	return out
}

// AddInPlace sets a += b.
func (ev *Evaluator) AddInPlace(a, b *Ciphertext) {
	level := ev.checkPair(a, b)
	r := ev.ctx.R
	limbs := r.Limbs(level, false)
	r.Add(limbs, a.C0, b.C0, a.C0)
	r.Add(limbs, a.C1, b.C1, a.C1)
}

// Sub returns a − b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	level := ev.checkPair(a, b)
	r := ev.ctx.R
	limbs := r.Limbs(level, false)
	out := &Ciphertext{C0: r.NewPolyQ(level), C1: r.NewPolyQ(level), Level: level, Scale: a.Scale}
	r.Sub(limbs, a.C0, b.C0, out.C0)
	r.Sub(limbs, a.C1, b.C1, out.C1)
	return out
}

// Neg returns −a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	r := ev.ctx.R
	limbs := r.Limbs(a.Level, false)
	out := &Ciphertext{C0: r.NewPolyQ(a.Level), C1: r.NewPolyQ(a.Level), Level: a.Level, Scale: a.Scale}
	r.Neg(limbs, a.C0, out.C0)
	r.Neg(limbs, a.C1, out.C1)
	return out
}

// AddPlain returns ct + pt (levels must match; scales must agree).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if ct.Level != pt.Level {
		panic("ckks: AddPlain level mismatch")
	}
	if !scaleClose(ct.Scale, pt.Scale) {
		panic(fmt.Sprintf("ckks: AddPlain scale mismatch 2^%.4f vs 2^%.4f",
			math.Log2(ct.Scale), math.Log2(pt.Scale)))
	}
	if !pt.IsNTT {
		panic("ckks: AddPlain requires NTT plaintext")
	}
	r := ev.ctx.R
	limbs := r.Limbs(ct.Level, false)
	out := ct.CopyNew(ev.ctx)
	r.Add(limbs, out.C0, pt.Value, out.C0)
	return out
}

// MulPlain returns ct ⊙ pt. The output scale is the product of scales;
// rescale afterwards.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if ct.Level != pt.Level {
		panic("ckks: MulPlain level mismatch")
	}
	if !pt.IsNTT {
		panic("ckks: MulPlain requires NTT plaintext")
	}
	r := ev.ctx.R
	limbs := r.Limbs(ct.Level, false)
	out := &Ciphertext{C0: r.NewPolyQ(ct.Level), C1: r.NewPolyQ(ct.Level), Level: ct.Level, Scale: ct.Scale * pt.Scale}
	r.MulCoeffs(limbs, ct.C0, pt.Value, out.C0)
	r.MulCoeffs(limbs, ct.C1, pt.Value, out.C1)
	return out
}

// MulConst multiplies every slot by the real constant c, using scale
// constScale for the encoding (pass 0 for the default: the current level's
// prime, so that one rescale restores the input scale).
func (ev *Evaluator) MulConst(ct *Ciphertext, c float64, constScale float64) *Ciphertext {
	if constScale == 0 {
		constScale = ev.ctx.Params.QiFloat(ct.Level)
	}
	s := EncodeConstant(c, constScale)
	r := ev.ctx.R
	limbs := r.Limbs(ct.Level, false)
	out := &Ciphertext{C0: r.NewPolyQ(ct.Level), C1: r.NewPolyQ(ct.Level), Level: ct.Level, Scale: ct.Scale * constScale}
	neg := s.Sign() < 0
	abs := new(big.Int).Abs(s)
	r.MulScalar(limbs, ct.C0, abs, out.C0)
	r.MulScalar(limbs, ct.C1, abs, out.C1)
	if neg {
		r.Neg(limbs, out.C0, out.C0)
		r.Neg(limbs, out.C1, out.C1)
	}
	return out
}

// MulInt multiplies every slot by the exact integer n (scale unchanged).
func (ev *Evaluator) MulInt(ct *Ciphertext, n int64) *Ciphertext {
	r := ev.ctx.R
	limbs := r.Limbs(ct.Level, false)
	out := &Ciphertext{C0: r.NewPolyQ(ct.Level), C1: r.NewPolyQ(ct.Level), Level: ct.Level, Scale: ct.Scale}
	neg := n < 0
	if neg {
		n = -n
	}
	s := big.NewInt(n)
	r.MulScalar(limbs, ct.C0, s, out.C0)
	r.MulScalar(limbs, ct.C1, s, out.C1)
	if neg {
		r.Neg(limbs, out.C0, out.C0)
		r.Neg(limbs, out.C1, out.C1)
	}
	return out
}

// AddConst adds the real constant c to every slot.
func (ev *Evaluator) AddConst(ct *Ciphertext, c float64) *Ciphertext {
	// Encode c at the ciphertext's exact scale: constant vectors encode to
	// a polynomial with a single nonzero coefficient ⌊c·scale⌉ at degree 0,
	// which is invariant under NTT limb-wise scalar representation only
	// after transform — so go through the encoder for correctness.
	enc := NewEncoder(ev.ctx)
	vals := make([]float64, ev.ctx.Params.Slots())
	for i := range vals {
		vals[i] = c
	}
	pt := enc.Encode(vals, ct.Level, ct.Scale)
	return ev.AddPlain(ct, pt)
}

// Mul returns a·b, relinearized back to degree 1. The output scale is
// a.Scale·b.Scale; rescale afterwards.
func (ev *Evaluator) Mul(a, b *Ciphertext) *Ciphertext {
	if ev.rlk == nil {
		panic("ckks: Mul requires a relinearization key")
	}
	level := ev.checkMulPair(a, b)
	r := ev.ctx.R
	limbs := r.Limbs(level, false)

	d0 := r.NewPolyQ(level)
	d1 := r.NewPolyQ(level)
	d2 := r.GetPoly()
	tmp := r.GetPoly()
	r.MulCoeffs(limbs, a.C0, b.C0, d0)
	r.MulCoeffs(limbs, a.C0, b.C1, d1)
	r.MulCoeffs(limbs, a.C1, b.C0, tmp)
	r.Add(limbs, d1, tmp, d1)
	r.MulCoeffs(limbs, a.C1, b.C1, d2)
	r.PutPoly(tmp)

	// Relinearize d2·s² via key switching.
	r.INTT(limbs, d2)
	ks0, ks1 := ev.keySwitchCoeff(level, d2, &ev.rlk.SwitchingKey)
	r.PutPoly(d2)
	out := &Ciphertext{C0: d0, C1: d1, Level: level, Scale: a.Scale * b.Scale}
	r.Add(limbs, out.C0, ks0, out.C0)
	r.Add(limbs, out.C1, ks1, out.C1)
	return out
}

func (ev *Evaluator) checkMulPair(a, b *Ciphertext) int {
	if a.Level != b.Level {
		panic(fmt.Sprintf("ckks: Mul level mismatch %d vs %d", a.Level, b.Level))
	}
	return a.Level
}

// Square returns a·a relinearized.
func (ev *Evaluator) Square(a *Ciphertext) *Ciphertext { return ev.Mul(a, a) }

// Rescale divides the ciphertext by its top prime q_level, dropping one
// level and dividing the scale accordingly.
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	if ct.Level == 0 {
		panic("ckks: cannot rescale at level 0")
	}
	r := ev.ctx.R
	level := ct.Level
	limbsAll := r.Limbs(level, false)
	limbsDown := r.Limbs(level-1, false)
	out := &Ciphertext{
		C0: r.NewPolyQ(level - 1), C1: r.NewPolyQ(level - 1),
		Level: level - 1,
		Scale: ct.Scale / ev.ctx.Params.QiFloat(level),
	}
	tmp := r.GetPoly()
	for _, pair := range [][2]*ring.Poly{{ct.C0, out.C0}, {ct.C1, out.C1}} {
		r.Copy(limbsAll, pair[0], tmp)
		r.INTT(limbsAll, tmp)
		r.DivideExactByLimb(level, limbsDown, tmp, tmp)
		r.NTT(limbsDown, tmp)
		r.Copy(limbsDown, tmp, pair[1])
	}
	r.PutPoly(tmp)
	return out
}

// RescaleTo repeatedly rescales until the ciphertext level equals level.
func (ev *Evaluator) RescaleTo(ct *Ciphertext, level int) *Ciphertext {
	out := ct
	for out.Level > level {
		out = ev.Rescale(out)
	}
	return out
}

// DropLevel reduces the ciphertext level by n without dividing (limbs are
// simply discarded; the scale is unchanged).
func (ev *Evaluator) DropLevel(ct *Ciphertext, n int) *Ciphertext {
	if n == 0 {
		return ct
	}
	if n < 0 || ct.Level-n < 0 {
		panic("ckks: invalid DropLevel")
	}
	r := ev.ctx.R
	level := ct.Level - n
	limbs := r.Limbs(level, false)
	out := &Ciphertext{C0: r.NewPolyQ(level), C1: r.NewPolyQ(level), Level: level, Scale: ct.Scale}
	r.Copy(limbs, ct.C0, out.C0)
	r.Copy(limbs, ct.C1, out.C1)
	return out
}
