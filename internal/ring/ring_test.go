package ring

import (
	"math/big"
	"math/rand"
	"testing"

	"cnnhe/internal/primes"
)

// testRing builds a small mixed ring: two word primes + one special.
func testRing(t testing.TB, logN int, bitSizes []int, special int) *Ring {
	t.Helper()
	specialBits := 0
	if special > 0 {
		specialBits = 45
	}
	chain, err := primes.BuildChain(logN, bitSizes, specialBits, special)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(1<<logN, chain.Moduli, special, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// naiveNegacyclic computes (a·b mod X^N+1) mod q with big.Int schoolbook.
func naiveNegacyclic(a, b []uint64, q *big.Int) []*big.Int {
	n := len(a)
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = new(big.Int)
	}
	t := new(big.Int)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		ai := new(big.Int).SetUint64(a[i])
		for j := 0; j < n; j++ {
			t.Mul(ai, new(big.Int).SetUint64(b[j]))
			k := i + j
			if k < n {
				out[k].Add(out[k], t)
			} else {
				out[k-n].Sub(out[k-n], t)
			}
		}
	}
	for i := range out {
		out[i].Mod(out[i], q)
	}
	return out
}

func TestNTTRoundTripWord(t *testing.T) {
	r := testRing(t, 8, []int{30, 45}, 0)
	rng := rand.New(rand.NewSource(42))
	for limb := 0; limb < 2; limb++ {
		sr := r.SubRings[limb]
		a := make([]uint64, r.N()*sr.Width())
		sr.SampleUniform(rng, a)
		orig := append([]uint64(nil), a...)
		sr.NTT(a)
		sr.INTT(a)
		for i := range a {
			if a[i] != orig[i] {
				t.Fatalf("limb %d: NTT/INTT roundtrip mismatch at %d", limb, i)
			}
		}
	}
}

func TestNTTRoundTripWide(t *testing.T) {
	chain, err := primes.BuildChain(6, []int{70}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(64, chain.Moduli, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sr := r.SubRings[0]
	rng := rand.New(rand.NewSource(9))
	a := make([]uint64, r.N()*sr.Width())
	sr.SampleUniform(rng, a)
	orig := append([]uint64(nil), a...)
	sr.NTT(a)
	sr.INTT(a)
	for i := range a {
		if a[i] != orig[i] {
			t.Fatalf("wide NTT/INTT roundtrip mismatch at word %d", i)
		}
	}
}

func TestNTTNegacyclicConvolutionWord(t *testing.T) {
	r := testRing(t, 6, []int{30}, 0)
	sr := r.SubRings[0].(*wordRing)
	q := sr.Modulus()
	rng := rand.New(rand.NewSource(5))
	n := r.N()
	a := make([]uint64, n)
	b := make([]uint64, n)
	sr.SampleUniform(rng, a)
	sr.SampleUniform(rng, b)
	want := naiveNegacyclic(a, b, q)

	an := append([]uint64(nil), a...)
	bn := append([]uint64(nil), b...)
	sr.NTT(an)
	sr.NTT(bn)
	out := make([]uint64, n)
	sr.MulCoeffs(an, bn, out)
	sr.INTT(out)
	for i := 0; i < n; i++ {
		if out[i] != want[i].Uint64() {
			t.Fatalf("negacyclic mismatch at %d: got %d want %v", i, out[i], want[i])
		}
	}
}

func TestNTTNegacyclicConvolutionWide(t *testing.T) {
	chain, err := primes.BuildChain(5, []int{80}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(32, chain.Moduli, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sr := r.SubRings[0].(*wideRing)
	q := sr.Modulus()
	rng := rand.New(rand.NewSource(15))
	n := r.N()
	a := make([]uint64, 2*n)
	b := make([]uint64, 2*n)
	sr.SampleUniform(rng, a)
	sr.SampleUniform(rng, b)

	// Schoolbook with big.Int.
	abig := make([]*big.Int, n)
	bbig := make([]*big.Int, n)
	c := new(big.Int)
	for i := 0; i < n; i++ {
		abig[i] = new(big.Int)
		sr.CoeffBig(a, i, abig[i])
		bbig[i] = new(big.Int)
		sr.CoeffBig(b, i, bbig[i])
		_ = c
	}
	want := make([]*big.Int, n)
	for i := range want {
		want[i] = new(big.Int)
	}
	t2 := new(big.Int)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t2.Mul(abig[i], bbig[j])
			k := i + j
			if k < n {
				want[k].Add(want[k], t2)
			} else {
				want[k-n].Sub(want[k-n], t2)
			}
		}
	}
	for i := range want {
		want[i].Mod(want[i], q)
	}

	sr.NTT(a)
	sr.NTT(b)
	out := make([]uint64, 2*n)
	sr.MulCoeffs(a, b, out)
	sr.INTT(out)
	got := new(big.Int)
	for i := 0; i < n; i++ {
		sr.CoeffBig(out, i, got)
		if got.Cmp(want[i]) != 0 {
			t.Fatalf("wide negacyclic mismatch at %d: got %v want %v", i, got, want[i])
		}
	}
}

func TestAutomorphismComposition(t *testing.T) {
	r := testRing(t, 7, []int{30}, 0)
	sr := r.SubRings[0]
	rng := rand.New(rand.NewSource(21))
	n := r.N()
	a := make([]uint64, n)
	sr.SampleUniform(rng, a)

	g := GaloisElementForRotation(r.LogN, 3)
	ginv := GaloisElementForRotation(r.LogN, -3)
	tmp := make([]uint64, n)
	back := make([]uint64, n)
	sr.Automorphism(a, g, tmp)
	sr.Automorphism(tmp, ginv, back)
	for i := range a {
		if back[i] != a[i] {
			t.Fatalf("automorphism inverse failed at %d", i)
		}
	}
	// X → X^g evaluated naively: coefficient i of a goes to i·g mod 2N.
	want := make([]uint64, n)
	q := sr.Modulus().Uint64()
	for i := 0; i < n; i++ {
		j := (uint64(i) * g) % uint64(2*n)
		if j < uint64(n) {
			want[j] = a[i]
		} else {
			if a[i] == 0 {
				want[j-uint64(n)] = 0
			} else {
				want[j-uint64(n)] = q - a[i]
			}
		}
	}
	for i := range want {
		if tmp[i] != want[i] {
			t.Fatalf("automorphism value mismatch at %d", i)
		}
	}
}

func TestSetCoeffsInt64AndCRTRoundTrip(t *testing.T) {
	r := testRing(t, 6, []int{30, 31, 45}, 0)
	level := 2
	limbs := r.Limbs(level, false)
	rng := rand.New(rand.NewSource(33))
	vec := make([]int64, r.N())
	for i := range vec {
		vec[i] = rng.Int63n(1<<40) - (1 << 39)
	}
	p := r.NewPoly(level)
	r.SetCoeffsInt64(limbs, vec, p)
	got := r.CoeffsBigCentered(level, p)
	for i := range vec {
		if got[i].Int64() != vec[i] {
			t.Fatalf("CRT roundtrip mismatch at %d: got %v want %d", i, got[i], vec[i])
		}
	}
}

func TestSetCoeffsBigRoundTrip(t *testing.T) {
	r := testRing(t, 5, []int{40, 40, 40}, 0)
	level := 2
	limbs := r.Limbs(level, false)
	rng := rand.New(rand.NewSource(37))
	half := new(big.Int).Rsh(r.Q(level), 1)
	vec := make([]*big.Int, r.N())
	for i := range vec {
		v := new(big.Int).Rand(rng, half)
		if rng.Intn(2) == 0 {
			v.Neg(v)
		}
		vec[i] = v
	}
	p := r.NewPoly(level)
	r.SetCoeffsBig(limbs, vec, p)
	got := r.CoeffsBigCentered(level, p)
	for i := range vec {
		if got[i].Cmp(vec[i]) != 0 {
			t.Fatalf("big roundtrip mismatch at %d", i)
		}
	}
}

func TestDivideExactByLimb(t *testing.T) {
	// Verify rescale-style division: value v·q_top at level ℓ divided by
	// q_top yields v at level ℓ−1.
	r := testRing(t, 5, []int{30, 31, 32}, 0)
	level := 2
	limbs := r.Limbs(level, false)
	qTop := r.SubRings[level].Modulus()
	rng := rand.New(rand.NewSource(41))
	vec := make([]*big.Int, r.N())
	exact := make([]*big.Int, r.N())
	for i := range vec {
		v := big.NewInt(rng.Int63n(1<<20) - (1 << 19))
		exact[i] = v
		vec[i] = new(big.Int).Mul(v, qTop)
	}
	p := r.NewPoly(level)
	r.SetCoeffsBig(limbs, vec, p)
	out := r.NewPoly(level)
	r.DivideExactByLimb(level, r.Limbs(level-1, false), p, out)
	got := r.CoeffsBigCentered(level-1, out)
	for i := range exact {
		if got[i].Cmp(exact[i]) != 0 {
			t.Fatalf("exact division mismatch at %d: got %v want %v", i, got[i], exact[i])
		}
	}
}

func TestDivideRoundsSmallError(t *testing.T) {
	// Dividing v·q_top + e (|e| small) must give v with error ≤ 1.
	r := testRing(t, 5, []int{30, 31, 32}, 0)
	level := 2
	limbs := r.Limbs(level, false)
	qTop := r.SubRings[level].Modulus()
	rng := rand.New(rand.NewSource(43))
	vec := make([]*big.Int, r.N())
	exact := make([]int64, r.N())
	for i := range vec {
		v := rng.Int63n(1<<20) - (1 << 19)
		e := rng.Int63n(100) - 50
		exact[i] = v
		vec[i] = new(big.Int).Mul(big.NewInt(v), qTop)
		vec[i].Add(vec[i], big.NewInt(e))
	}
	p := r.NewPoly(level)
	r.SetCoeffsBig(limbs, vec, p)
	out := r.NewPoly(level)
	r.DivideExactByLimb(level, r.Limbs(level-1, false), p, out)
	got := r.CoeffsBigCentered(level-1, out)
	for i := range exact {
		d := new(big.Int).Sub(got[i], big.NewInt(exact[i]))
		if d.CmpAbs(big.NewInt(1)) > 0 {
			t.Fatalf("division error too large at %d: %v", i, d)
		}
	}
}

func TestExtendLimb(t *testing.T) {
	r := testRing(t, 5, []int{30, 31}, 1)
	rng := rand.New(rand.NewSource(47))
	p := r.NewPoly(1)
	sr := r.SubRings[0]
	sr.SampleUniform(rng, p.Coeffs[0])
	out := r.NewPoly(1)
	limbs := r.Limbs(1, true)
	r.ExtendLimb(0, limbs, p, out)
	v := new(big.Int)
	w := new(big.Int)
	for _, li := range limbs {
		mod := r.SubRings[li].Modulus()
		for j := 0; j < r.N(); j++ {
			sr.CoeffBig(p.Coeffs[0], j, v)
			r.SubRings[li].CoeffBig(out.Coeffs[li], j, w)
			if new(big.Int).Mod(v, mod).Cmp(w) != 0 {
				t.Fatalf("extend mismatch limb %d coeff %d", li, j)
			}
		}
	}
}

func TestSamplers(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n, h := 1024, 64
	vec := SampleTernaryHW(rng, n, h)
	nz := 0
	for _, v := range vec {
		if v != 0 {
			nz++
			if v != 1 && v != -1 {
				t.Fatalf("non-ternary value %d", v)
			}
		}
	}
	if nz != h {
		t.Fatalf("Hamming weight %d want %d", nz, h)
	}

	g := SampleGaussian(rng, 1<<14, 3.2)
	var sum, sq float64
	for _, v := range g {
		f := float64(v)
		sum += f
		sq += f * f
		if f > 6*3.2+1 || f < -6*3.2-1 {
			t.Fatalf("sample %v outside truncation bound", v)
		}
	}
	mean := sum / float64(len(g))
	variance := sq/float64(len(g)) - mean*mean
	if mean > 0.2 || mean < -0.2 {
		t.Errorf("gaussian mean %v too far from 0", mean)
	}
	if variance < 8 || variance > 13 {
		t.Errorf("gaussian variance %v too far from σ²≈10.24", variance)
	}

	s := SampleTernarySparse(rng, 1<<14, 2.0/3.0)
	nz = 0
	for _, v := range s {
		if v != 0 {
			nz++
		}
	}
	frac := float64(nz) / float64(len(s))
	if frac < 0.6 || frac > 0.73 {
		t.Errorf("ternary density %v too far from 2/3", frac)
	}
}

func TestGaloisElements(t *testing.T) {
	logN := 10
	twoN := uint64(1) << uint(logN+1)
	g1 := GaloisElementForRotation(logN, 1)
	if g1 != 5 {
		t.Fatalf("rotation by 1 should be 5, got %d", g1)
	}
	// 5^r · 5^{-r} ≡ 1 (mod 2N).
	for _, rot := range []int{1, 3, 17, -1, -9} {
		g := GaloisElementForRotation(logN, rot)
		gi := GaloisElementForRotation(logN, -rot)
		if (g*gi)%twoN != 1 {
			t.Fatalf("galois elements for ±%d do not invert", rot)
		}
		if g%2 == 0 {
			t.Fatalf("galois element must be odd")
		}
	}
	if GaloisElementConjugate(logN) != twoN-1 {
		t.Fatal("conjugation element should be 2N-1")
	}
}

func TestRingLevelAccounting(t *testing.T) {
	r := testRing(t, 4, []int{30, 31, 32}, 1)
	if r.MaxLevel() != 2 {
		t.Fatalf("max level %d want 2", r.MaxLevel())
	}
	limbs := r.Limbs(1, true)
	want := []int{0, 1, 3}
	if len(limbs) != len(want) {
		t.Fatalf("limbs %v", limbs)
	}
	for i := range want {
		if limbs[i] != want[i] {
			t.Fatalf("limbs %v want %v", limbs, want)
		}
	}
	p := r.NewPoly(1)
	if p.Coeffs[2] != nil {
		t.Fatal("level-1 poly should not allocate limb 2")
	}
	if p.Coeffs[3] == nil {
		t.Fatal("level-1 poly should allocate the special limb")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := testRing(t, 7, []int{30, 31, 40}, 0)
	rng := rand.New(rand.NewSource(55))
	limbs := r.Limbs(2, false)
	a := r.NewPoly(2)
	b := r.NewPoly(2)
	r.SampleUniform(rng, limbs, a)
	r.SampleUniform(rng, limbs, b)
	seq := r.NewPoly(2)
	par := r.NewPoly(2)
	r.Parallel = false
	r.MulCoeffs(limbs, a, b, seq)
	r.Parallel = true
	r.MulCoeffs(limbs, a, b, par)
	r.Parallel = false
	if !r.Equal(limbs, seq, par) {
		t.Fatal("parallel result differs from sequential")
	}
}

func BenchmarkNTTWord4096(b *testing.B) {
	chain, err := primes.BuildChain(12, []int{50}, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	r, _ := NewRing(4096, chain.Moduli, 0, 1)
	sr := r.SubRings[0]
	a := make([]uint64, 4096)
	sr.SampleUniform(rand.New(rand.NewSource(1)), a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.NTT(a)
	}
}

func BenchmarkNTTWide4096(b *testing.B) {
	chain, err := primes.BuildChain(12, []int{90}, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	r, _ := NewRing(4096, chain.Moduli, 0, 1)
	sr := r.SubRings[0]
	a := make([]uint64, 2*4096)
	sr.SampleUniform(rand.New(rand.NewSource(1)), a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr.NTT(a)
	}
}
