package nn

import (
	"fmt"
	"math"
	"math/rand"

	"cnnhe/internal/tensor"
)

// SoftmaxCrossEntropy returns the loss and ∂L/∂logits for one sample.
func SoftmaxCrossEntropy(logits []float64, label int) (float64, []float64) {
	maxL := logits[0]
	for _, v := range logits[1:] {
		if v > maxL {
			maxL = v
		}
	}
	sum := 0.0
	exps := make([]float64, len(logits))
	for i, v := range logits {
		exps[i] = math.Exp(v - maxL)
		sum += exps[i]
	}
	loss := -math.Log(exps[label] / sum)
	grad := make([]float64, len(logits))
	for i := range grad {
		grad[i] = exps[i]/sum - b2f(i == label)
	}
	return loss, grad
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// SGD is stochastic gradient descent with momentum (paper: momentum 0.9).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
}

// Step applies one update to the given parameters and clears gradients.
// Gradients are averaged over batchSize.
func (s *SGD) Step(params []*Param, batchSize int) {
	inv := 1.0 / float64(batchSize)
	for _, p := range params {
		if p.Frozen {
			p.ZeroGrad()
			continue
		}
		for i := range p.Data {
			g := p.Grad[i]*inv + s.WeightDecay*p.Data[i]
			p.Vel[i] = s.Momentum*p.Vel[i] + g
			p.Data[i] -= s.LR * p.Vel[i]
			p.Grad[i] = 0
		}
	}
}

// OneCycle implements the 1-cycle learning-rate policy (super-convergence):
// LR rises linearly from MaxLR/DivFactor to MaxLR over PctStart of
// training, then anneals to MaxLR/FinalDiv with a cosine schedule.
type OneCycle struct {
	MaxLR      float64
	TotalSteps int
	PctStart   float64
	DivFactor  float64
	FinalDiv   float64
}

// NewOneCycle returns the policy with the conventional defaults.
func NewOneCycle(maxLR float64, totalSteps int) *OneCycle {
	return &OneCycle{MaxLR: maxLR, TotalSteps: totalSteps, PctStart: 0.3, DivFactor: 25, FinalDiv: 1e4}
}

// LR returns the learning rate for a 0-based step.
func (o *OneCycle) LR(step int) float64 {
	if o.TotalSteps <= 1 {
		return o.MaxLR
	}
	warm := int(float64(o.TotalSteps) * o.PctStart)
	if warm < 1 {
		warm = 1
	}
	initial := o.MaxLR / o.DivFactor
	final := o.MaxLR / o.FinalDiv
	if step < warm {
		t := float64(step) / float64(warm)
		return initial + (o.MaxLR-initial)*t
	}
	t := float64(step-warm) / float64(o.TotalSteps-warm)
	if t > 1 {
		t = 1
	}
	return final + (o.MaxLR-final)*(1+math.Cos(math.Pi*t))/2
}

// TrainConfig bundles the paper's training hyper-parameters.
type TrainConfig struct {
	Epochs    int     // paper: 30
	BatchSize int     // paper: 64
	MaxLR     float64 // 1-cycle peak
	Momentum  float64 // paper: 0.9
	Seed      int64
	Verbose   bool
	// LogEvery epochs; 0 disables intermediate logging.
	LogEvery int
}

// DefaultTrainConfig returns the paper's Section V.D settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9, Seed: 1, LogEvery: 5}
}

// Dataset pairs images with labels. Images are flat [C·H·W] tensors.
type Dataset struct {
	Images []*tensor.Tensor
	Labels []int
}

// Len returns the number of samples.
func (d Dataset) Len() int { return len(d.Images) }

// Train runs SGD with momentum under the 1-cycle policy and returns the
// final training accuracy.
func Train(m *Model, ds Dataset, cfg TrainConfig) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ds.Len()
	stepsPerEpoch := (n + cfg.BatchSize - 1) / cfg.BatchSize
	sched := NewOneCycle(cfg.MaxLR, cfg.Epochs*stepsPerEpoch)
	opt := &SGD{Momentum: cfg.Momentum}
	params := m.Params()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss, correct := 0.0, 0
		for s := 0; s < n; s += cfg.BatchSize {
			e := s + cfg.BatchSize
			if e > n {
				e = n
			}
			batch := make([]*tensor.Tensor, 0, e-s)
			labels := make([]int, 0, e-s)
			for _, id := range idx[s:e] {
				batch = append(batch, ds.Images[id])
				labels = append(labels, ds.Labels[id])
			}
			outs := m.ForwardBatch(batch, true)
			grads := make([]*tensor.Tensor, len(outs))
			for b, out := range outs {
				loss, g := SoftmaxCrossEntropy(out.Data, labels[b])
				totalLoss += loss
				if argmax(out.Data) == labels[b] {
					correct++
				}
				grads[b] = tensor.FromSlice(g, len(g))
			}
			m.BackwardBatch(grads)
			opt.LR = sched.LR(step)
			opt.Step(params, len(batch))
			step++
		}
		if cfg.Verbose && cfg.LogEvery > 0 && (epoch+1)%cfg.LogEvery == 0 {
			fmt.Printf("epoch %3d/%d  loss %.4f  train acc %.2f%%\n",
				epoch+1, cfg.Epochs, totalLoss/float64(n), 100*float64(correct)/float64(n))
		}
	}
	return Evaluate(m, ds)
}

// Evaluate returns the classification accuracy of m on ds.
func Evaluate(m *Model, ds Dataset) float64 {
	correct := 0
	const batch = 256
	for s := 0; s < ds.Len(); s += batch {
		e := s + batch
		if e > ds.Len() {
			e = ds.Len()
		}
		outs := m.ForwardBatch(ds.Images[s:e], false)
		for b, out := range outs {
			if argmax(out.Data) == ds.Labels[s+b] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
