#!/usr/bin/env bash
# Chaos + soak drill at the process level: run heserve with network fault
# injection on its listener and a durable key store, bombard it with
# open-loop load, SIGKILL the daemon mid-load, restart it over the same
# store, and assert
#
#   - hebombard accounts every request (exit 1 = silent drops, 2 = no
#     successes at all; both fail this script),
#   - the restarted daemon reloads the registered key bundle from disk
#     (logged resident_bundles=1 — durability, not client re-registration),
#   - an encrypted classification still round-trips after the restart
#     with the keys generated before the kill.
#
# Tunables: ADDR, SOAK_SECS (default 30), RATE (default 10 req/s),
# CHAOS (fault spec), REPORT (report path, kept for CI artifact upload),
# SNAPSHOT (flight-recorder dump path, likewise kept for CI).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-localhost:8378}
SOAK_SECS=${SOAK_SECS:-30}
RATE=${RATE:-10}
CHAOS=${CHAOS:-"latency:ms=20:p=0.2,reset:p=0.03,truncate:bytes=512:p=0.03"}
WORK=$(mktemp -d)
REPORT=${REPORT:-"$WORK/slo-report.json"}
SNAPSHOT=${SNAPSHOT:-"$WORK/debug-requests.json"}
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/heserve" ./cmd/heserve
go build -o "$WORK/hebombard" ./cmd/hebombard
go build -o "$WORK/hectl" ./cmd/hectl

if [ ! -f models/cnn1.gob ]; then
    echo "== training a small CNN1 model =="
    go run ./cmd/hetrain -model cnn1 -train 512 -test 128 -epochs 1 -retrofit 1 -q
fi

SERVE_FLAGS=(-model models/cnn1.gob -addr "$ADDR" -logn 11 -levels 7 -batch 1
    -key-store "$WORK/key-store" -chaos "$CHAOS" -chaos-seed 7
    -request-timeout 30s)

start_serve() {
    "$WORK/heserve" "${SERVE_FLAGS[@]}" >>"$WORK/heserve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 120); do
        curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/heserve.log" >&2; echo "heserve exited during startup" >&2; exit 1; }
        sleep 1
    done
    cat "$WORK/heserve.log" >&2
    echo "heserve never became healthy" >&2
    exit 1
}

echo "== starting heserve (chaos: $CHAOS) =="
start_serve

echo "== key ceremony before the kill =="
"$WORK/hectl" keygen -server "http://$ADDR" -keys "$WORK/keys" -seed 42
"$WORK/hectl" register -server "http://$ADDR" -keys "$WORK/keys"

echo "== bombarding for ${SOAK_SECS}s at ${RATE} req/s =="
"$WORK/hebombard" -url "http://$ADDR" -rate "$RATE" -duration "${SOAK_SECS}s" \
    -deadline 25s -out "$REPORT" &
BOMBARD_PID=$!

sleep "$((SOAK_SECS / 3))"
echo "== SIGKILL heserve mid-load =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

sleep 2
echo "== restarting heserve over the same key store =="
start_serve
grep -q "resident_bundles=1" "$WORK/heserve.log" || {
    cat "$WORK/heserve.log" >&2
    echo "restarted daemon did not reload the durable key bundle" >&2
    exit 1
}

BOMBARD_RC=0
wait "$BOMBARD_PID" || BOMBARD_RC=$?
echo "== SLO report =="
cat "$REPORT"
if [ "$BOMBARD_RC" -ne 0 ]; then
    echo "hebombard failed (rc=$BOMBARD_RC: 1 = silent drops, 2 = zero successes)" >&2
    exit "$BOMBARD_RC"
fi

echo "== encrypted classification with pre-kill keys (no re-registration) =="
"$WORK/hectl" classify -server "http://$ADDR" -keys "$WORK/keys" -image 3

echo "== flight-recorder snapshot (slowest 20 requests since restart) =="
curl -fsS "http://$ADDR/debug/requests?slowest=20" -o "$SNAPSHOT"
python3 -c "import json,sys; d=json.load(open('$SNAPSHOT')); print('flight recorder holds', d['count'], 'requests')" \
    2>/dev/null || echo "flight snapshot saved to $SNAPSHOT"

echo "soak-chaos: OK"
