package rnsdec_test

import (
	"fmt"

	"cnnhe/internal/rnsdec"
)

// ExampleBasis reproduces the paper's Fig. 2: residue decomposition,
// component-wise arithmetic and CRT recomposition.
func ExampleBasis() {
	basis, _ := rnsdec.NewBasis([]int64{251, 256, 255})
	x := int64(1000)
	res := basis.Decompose(x)
	fmt.Println(res)
	fmt.Println(basis.Compose(res))
	// Output:
	// [247 232 235]
	// 1000
}

// ExampleDigitBasis shows the decomposition mode the encrypted Fig. 5
// pipeline uses: recomposition is linear, so it commutes with any linear
// layer.
func ExampleDigitBasis() {
	d, _ := rnsdec.NewDigitBasis(16, 2)
	fmt.Println(d.Decompose(255))
	fmt.Println(d.Weights())
	// Output:
	// [15 15]
	// [1 16]
}
