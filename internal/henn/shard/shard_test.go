package shard

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// TestLocateGlobalAtBijection checks Locate/GlobalAt invert each other
// over every element of a selection of awkward (shape, grid) pairs,
// including uneven bands.
func TestLocateGlobalAtBijection(t *testing.T) {
	cases := []struct {
		shape Shape
		grid  Grid
	}{
		{Shape{1, 1, 7}, Grid{1, 1}},
		{Shape{1, 1, 7}, Grid{1, 3}},
		{Shape{3, 32, 32}, Grid{2, 1}},
		{Shape{3, 32, 32}, Grid{2, 2}},
		{Shape{3, 31, 29}, Grid{3, 4}}, // uneven bands both axes
		{Shape{5, 7, 7}, Grid{7, 7}},   // 1×1 bands
	}
	for _, c := range cases {
		m, err := New(c.shape, c.grid, c.shape.Flat())
		if err != nil {
			t.Fatalf("New(%+v, %+v): %v", c.shape, c.grid, err)
		}
		seen := map[[2]int]bool{}
		for g := 0; g < c.shape.Flat(); g++ {
			s, slot := m.Locate(g)
			if s < 0 || s >= m.NumShards() || slot < 0 || slot >= m.ShardLen(s) {
				t.Fatalf("%v: Locate(%d) = (%d, %d) out of range", m, g, s, slot)
			}
			if seen[[2]int{s, slot}] {
				t.Fatalf("%v: Locate not injective at global %d", m, g)
			}
			seen[[2]int{s, slot}] = true
			if back := m.GlobalAt(s, slot); back != g {
				t.Fatalf("%v: GlobalAt(Locate(%d)) = %d", m, g, back)
			}
		}
		total := 0
		for s := 0; s < m.NumShards(); s++ {
			total += m.ShardLen(s)
			if m.GlobalAt(s, m.ShardLen(s)) != -1 {
				t.Fatalf("%v: padding slot should map to -1", m)
			}
		}
		if total != c.shape.Flat() {
			t.Fatalf("%v: shard lengths sum to %d, want %d", m, total, c.shape.Flat())
		}
	}
}

// TestSplitJoinRoundTrip checks Join inverts Split, including when the
// decrypted shards come back padded to full slot capacity.
func TestSplitJoinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := New(Shape{3, 32, 32}, Grid{2, 2}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]float64, m.Shape.Flat())
	for i := range vec {
		vec[i] = rng.NormFloat64()
	}
	parts, err := m.Split(vec)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("got %d shards, want 4", len(parts))
	}
	// Pad shards to capacity as a decryptor would.
	for s := range parts {
		parts[s] = append(parts[s], make([]float64, m.Slots-len(parts[s]))...)
	}
	back, err := m.Join(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vec {
		if back[i] != vec[i] {
			t.Fatalf("round trip differs at %d: %v vs %v", i, back[i], vec[i])
		}
	}
}

func TestForDim(t *testing.T) {
	m, err := ForDim(3072, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 2 || m.ShardLen(0) != 1536 || m.ShardLen(1) != 1536 {
		t.Fatalf("ForDim(3072, 2048) = %v", m)
	}
	if m, err = ForDim(100, 2048); err != nil || m.NumShards() != 1 || m.ShardLen(0) != 100 {
		t.Fatalf("ForDim(100, 2048) = %v, %v", m, err)
	}
}

func TestNewRejectsOversizedShards(t *testing.T) {
	if _, err := New(Shape{3, 32, 32}, Grid{1, 1}, 2048); err == nil {
		t.Fatal("3072-element shard accepted into 2048 slots")
	}
	if _, err := New(Shape{3, 32, 32}, Grid{33, 1}, 2048); err == nil {
		t.Fatal("grid taller than image accepted")
	}
}

func TestWireRoundTrip(t *testing.T) {
	m, err := New(Shape{3, 32, 32}, Grid{2, 1}, 2048)
	if err != nil {
		t.Fatal(err)
	}
	m.Halo = 2
	frame := m.Encode()
	got, err := DecodeManifest(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("decoded %+v, want %+v", got, m)
	}

	// Corruptions must yield typed errors.
	flip := append([]byte(nil), frame...)
	flip[3] ^= 0x01
	if _, err := DecodeManifest(flip); !errors.Is(err, ErrChecksum) {
		t.Fatalf("bit flip: %v, want ErrChecksum", err)
	}
	if _, err := DecodeManifest(frame[:len(frame)-2]); !errors.Is(err, ErrFormat) {
		t.Fatalf("truncation: %v, want ErrFormat", err)
	}
	if _, err := DecodeManifest(bytes.Replace(frame, []byte{wireTag}, []byte{'X'}, 1)); !errors.Is(err, ErrFormat) {
		t.Fatal("bad tag accepted")
	}
}
