package henn

import (
	"fmt"
	"sort"
	"sync"

	"cnnhe/internal/henn/exec"
	"cnnhe/internal/henn/ir"
	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/nn"
	"cnnhe/internal/tensor"
)

// Plan is a compiled homomorphic evaluation pipeline: a sequence of stages
// over one packed ciphertext.
type Plan struct {
	// Slots is the SIMD width the plan was compiled for.
	Slots int
	// InputDim is the raw input length (784 pixels).
	InputDim int
	// OutputDim is the number of logits.
	OutputDim int
	// Stages in evaluation order.
	Stages []Stage
	// Depth is the number of levels the plan consumes.
	Depth int
	// Opt configures the graph optimizer run between lowering and
	// preparation; nil selects the full default pass pipeline, and
	// opt.Disabled() (the -opt=off escape hatch) executes the canonical
	// lowering unchanged.
	Opt *opt.Options

	// prepared caches one lowered, optimized, plaintext-pre-encoded graph
	// per engine; the zero value is ready to use.
	mu         sync.Mutex
	prepared   map[Engine]*exec.Prepared
	optResults map[Engine]*opt.Result
}

// prepare lowers the plan for e (once per engine), optimizes the graph,
// and pre-encodes every plaintext operand at its statically inferred
// (level, scale).
func (p *Plan) prepare(e Engine) (*exec.Prepared, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pr, ok := p.prepared[e]; ok {
		telPrepare(true)
		return pr, nil
	}
	telPrepare(false)
	g, err := p.Lower(e)
	if err != nil {
		return nil, err
	}
	res, err := optimizeLowered(e, g, p.Opt)
	if err != nil {
		return nil, err
	}
	pr, err := exec.Prepare(e, res.Graph)
	if err != nil {
		return nil, err
	}
	if p.prepared == nil {
		p.prepared = map[Engine]*exec.Prepared{}
		p.optResults = map[Engine]*opt.Result{}
	}
	p.prepared[e] = pr
	p.optResults[e] = res
	return pr, nil
}

// OptResult returns the optimizer outcome for e, preparing the plan if
// needed (before/after stats and per-pass deltas, for CLIs and bench
// reports).
func (p *Plan) OptResult(e Engine) (*opt.Result, error) {
	if _, err := p.prepare(e); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.optResults[e], nil
}

// optimizeLowered runs the graph optimizer and records its pass metrics.
func optimizeLowered(e Engine, g *ir.Graph, o *opt.Options) (*opt.Result, error) {
	res, err := opt.Optimize(e, g, o)
	if err != nil {
		return nil, err
	}
	telOptimize(res)
	return res, nil
}

// Stage is one homomorphic pipeline step.
type Stage interface {
	// Eval applies the stage.
	Eval(e Engine, ct Ct) Ct
	// Rotations lists the slot rotations the stage needs.
	Rotations() []int
	// Depth is the number of rescales the stage consumes.
	Depth() int
	// Describe returns a human-readable summary.
	Describe() string
}

// Rotations returns the union of rotation amounts needed by all stages.
func (p *Plan) Rotations() []int {
	set := map[int]bool{}
	for _, s := range p.Stages {
		for _, r := range s.Rotations() {
			if r != 0 {
				set[r] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// LinearStage evaluates y = M·x + b by the Halevi–Shoup diagonal method
// with baby-step/giant-step rotations. M is held as its nonzero
// generalized diagonals over the full slot dimension.
type LinearStage struct {
	Label string
	// Diags maps diagonal index k to the vector diag_k[i] = M[i][(i+k) mod slots].
	Diags map[int][]float64
	// Bias is the slot-aligned bias vector.
	Bias  []float64
	Slots int
	// BSGS split: Baby · Giant = Slots.
	Baby, Giant int
}

// NewLinearStage lowers an explicit rows×cols matrix (rows, cols ≤ slots)
// with bias to a stage.
func NewLinearStage(label string, m *tensor.Tensor, bias []float64, slots int) (*LinearStage, error) {
	rows, cols := m.Shape[0], m.Shape[1]
	if rows > slots || cols > slots {
		return nil, fmt.Errorf("henn: matrix %dx%d exceeds %d slots", rows, cols, slots)
	}
	st := &LinearStage{
		Label: label,
		Diags: map[int][]float64{},
		Bias:  make([]float64, slots),
		Slots: slots,
	}
	copy(st.Bias, bias)
	for k := 0; k < slots; k++ {
		var diag []float64
		for i := 0; i < rows; i++ {
			j := (i + k) % slots
			if j >= cols {
				continue
			}
			v := m.Data[i*cols+j]
			if v == 0 {
				continue
			}
			if diag == nil {
				diag = make([]float64, slots)
			}
			diag[i] = v
		}
		if diag != nil {
			st.Diags[k] = diag
		}
	}
	if len(st.Diags) == 0 {
		return nil, fmt.Errorf("henn: zero matrix for stage %s", label)
	}
	// Balanced power-of-two BSGS split.
	logS := 0
	for 1<<logS < slots {
		logS++
	}
	st.Baby = 1 << ((logS + 1) / 2)
	st.Giant = slots / st.Baby
	return st, nil
}

// Rotations implements Stage: the used baby steps and giant steps.
func (s *LinearStage) Rotations() []int {
	set := map[int]bool{}
	for k := range s.Diags {
		i, j := k/s.Baby, k%s.Baby
		if j != 0 {
			set[j] = true
		}
		if i != 0 {
			set[i*s.Baby] = true
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Depth implements Stage.
func (s *LinearStage) Depth() int { return 1 }

// Describe implements Stage.
func (s *LinearStage) Describe() string {
	return fmt.Sprintf("linear %s: %d diagonals, bsgs %dx%d", s.Label, len(s.Diags), s.Baby, s.Giant)
}

// rotateVec cyclically rotates v left by k (k may be negative).
func rotateVec(v []float64, k int) []float64 {
	n := len(v)
	k = ((k % n) + n) % n
	if k == 0 {
		return v
	}
	out := make([]float64, n)
	copy(out, v[k:])
	copy(out[n-k:], v[:k])
	return out
}

// Eval implements Stage. The output scale returns to the input scale after
// the built-in rescale; one level is consumed.
func (s *LinearStage) Eval(e Engine, x Ct) Ct {
	return s.eval(e, x, true)
}

// EvalNoBias evaluates the linear map without adding the bias (used by the
// RNS decomposition pipeline, where only the weight-1 part carries it).
func (s *LinearStage) EvalNoBias(e Engine, x Ct) Ct {
	return s.eval(e, x, false)
}

func (s *LinearStage) eval(e Engine, x Ct, withBias bool) Ct {
	return e.Rescale(s.evalRaw(e, x, withBias))
}

// evalRaw is eval up to (not including) the final rescale: the BSGS
// accumulator at the pre-rescale scale S·q̃_ℓ. The sharded pipeline sums
// several block accumulators (one per input shard) at this scale before
// paying the single rescale; with one block the sequence rescale∘evalRaw
// is exactly eval, which is what makes the 1×1-grid sharded lowering
// bit-identical to the unsharded one.
func (s *LinearStage) evalRaw(e Engine, x Ct, withBias bool) Ct {
	level := e.Level(x)
	ptScale := e.QiFloat(level)
	// Hoist all baby-step rotations: the key-switch decomposition of x is
	// computed once for the whole stage.
	babySteps := map[int]bool{}
	for k := range s.Diags {
		babySteps[k%s.Baby] = true
	}
	var babyList []int
	for j := range babySteps {
		babyList = append(babyList, j)
	}
	babies := e.RotateMany(x, babyList)
	var acc Ct
	for i := 0; i < s.Giant; i++ {
		var inner Ct
		for j := 0; j < s.Baby; j++ {
			k := i*s.Baby + j
			diag, ok := s.Diags[k]
			if !ok {
				continue
			}
			baby := babies[j]
			term := e.MulPlainVecCached(baby, fmt.Sprintf("%s/d%d", s.Label, k),
				rotateVec(diag, -i*s.Baby), ptScale)
			if inner == nil {
				inner = term
			} else {
				inner = e.Add(inner, term)
			}
		}
		if inner == nil {
			continue
		}
		if i != 0 {
			inner = e.Rotate(inner, i*s.Baby)
		}
		if acc == nil {
			acc = inner
		} else {
			acc = e.Add(acc, inner)
		}
	}
	if withBias {
		// Bias joins at the pre-rescale scale S·q̃_ℓ.
		acc = e.AddPlainVecCached(acc, s.Label+"/bias", s.Bias)
	}
	return acc
}

// ActStage evaluates a degree-≤4 polynomial activation with per-slot
// coefficient vectors. Degrees 1–3 take multiplicative depth 2:
//
//	y = A0 + A1⊙x + (A2 + A3⊙x)⊙x².
//
// Degree 4 — the Ishiyama-style higher-fidelity activation the CIFAR-10
// CNN3 config uses — takes depth 3:
//
//	y = A0 + A1⊙x + (A2 + A3⊙x + A4⊙x²)⊙x².
type ActStage struct {
	Label  string
	Degree int
	// A[p] is the slot-aligned coefficient vector for power p.
	A      [5][]float64
	SlotsN int
}

// NewActStage builds an activation stage from per-unit SLAF coefficients
// broadcast over the packed layout. unitOf maps a slot index (< dim) to
// its coefficient group.
func NewActStage(label string, s *nn.SLAF, dim int, unitOf func(i int) int, slots int) (*ActStage, error) {
	if s.Degree > 4 || s.Degree < 1 {
		return nil, fmt.Errorf("henn: unsupported SLAF degree %d (1..4)", s.Degree)
	}
	st := &ActStage{Label: label, Degree: s.Degree, SlotsN: slots}
	for p := 0; p <= s.Degree; p++ {
		st.A[p] = make([]float64, slots)
	}
	for i := 0; i < dim; i++ {
		u := unitOf(i)
		for p := 0; p <= s.Degree; p++ {
			st.A[p][i] = s.Coeffs.Data[u*(s.Degree+1)+p]
		}
	}
	return st, nil
}

// Rotations implements Stage.
func (s *ActStage) Rotations() []int { return nil }

// Depth implements Stage.
func (s *ActStage) Depth() int {
	if s.Degree >= 4 {
		return 3
	}
	return 2
}

// Describe implements Stage.
func (s *ActStage) Describe() string {
	return fmt.Sprintf("act %s: degree %d", s.Label, s.Degree)
}

// Eval implements Stage.
func (s *ActStage) Eval(e Engine, x Ct) Ct {
	level := e.Level(x)
	scaleX := e.ScaleOf(x)
	switch s.Degree {
	case 1:
		// y = A0 + A1⊙x (consume one level for uniform depth accounting).
		t := e.Rescale(e.MulPlainVecCached(x, s.Label+"/a1", s.A[1], e.QiFloat(level)))
		t = e.DropLevel(t, 1)
		return e.AddPlainVecCached(t, s.Label+"/a0", s.A[0])
	case 2:
		// y = A0 + A1⊙x + A2⊙x²
		x2 := e.Rescale(e.MulRelin(x, x)) // level-1, S²/q
		t2 := e.Rescale(e.MulPlainVecCached(x2, s.Label+"/a2", s.A[2], e.QiFloat(level-1)))
		// A1⊙x aligned to t2's scale and level.
		target := e.ScaleOf(t2)
		sc1 := target * e.QiFloat(level) / scaleX
		t1 := e.DropLevel(e.Rescale(e.MulPlainVecCached(x, s.Label+"/a1", s.A[1], sc1)), 1)
		y := e.Add(t2, t1)
		return e.AddPlainVecCached(y, s.Label+"/a0", s.A[0])
	case 3:
		x2 := e.Rescale(e.MulRelin(x, x)) // level-1, S²/q_ℓ
		// u = A3⊙x + A2 at level-1
		u := e.Rescale(e.MulPlainVecCached(x, s.Label+"/a3", s.A[3], e.QiFloat(level)))
		u = e.AddPlainVecCached(u, s.Label+"/a2", s.A[2])
		v := e.Rescale(e.MulRelin(u, x2)) // level-2
		// w = A1⊙x aligned to v.
		target := e.ScaleOf(v)
		sc1 := target * e.QiFloat(level) / scaleX
		w := e.DropLevel(e.Rescale(e.MulPlainVecCached(x, s.Label+"/a1", s.A[1], sc1)), 1)
		y := e.Add(v, w)
		return e.AddPlainVecCached(y, s.Label+"/a0", s.A[0])
	default: // 4
		x2 := e.Rescale(e.MulRelin(x, x)) // level-1, s2 := S²/q_ℓ
		// q = A4⊙x² + A3⊙x + A2 at level-2, scale s2.
		t4 := e.Rescale(e.MulPlainVecCached(x2, s.Label+"/a4", s.A[4], e.QiFloat(level-1)))
		target := e.ScaleOf(t4)
		sc3 := target * e.QiFloat(level) / scaleX
		t3 := e.DropLevel(e.Rescale(e.MulPlainVecCached(x, s.Label+"/a3", s.A[3], sc3)), 1)
		q := e.AddPlainVecCached(e.Add(t4, t3), s.Label+"/a2", s.A[2])
		v := e.Rescale(e.MulRelin(q, e.DropLevel(x2, 1))) // level-3
		// w = A1⊙x aligned to v.
		targetV := e.ScaleOf(v)
		sc1 := targetV * e.QiFloat(level) / scaleX
		w := e.DropLevel(e.Rescale(e.MulPlainVecCached(x, s.Label+"/a1", s.A[1], sc1)), 2)
		y := e.Add(v, w)
		return e.AddPlainVecCached(y, s.Label+"/a0", s.A[0])
	}
}

// Options controls plan compilation.
type Options struct {
	// Collapse merges adjacent linear layers (conv, pool, dense, folded
	// batch norm) into a single matrix before lowering — the paper's
	// Table I "2-arch" dual-architecture strategy. Each collapse saves one
	// multiplicative level and one full BSGS matrix-vector product.
	Collapse bool
}

// Compile lowers a trained SLAF model to a homomorphic plan for the given
// slot count with linear collapsing enabled.
func Compile(m *nn.Model, slots int) (*Plan, error) {
	return CompileWithOptions(m, slots, Options{Collapse: true})
}

// tshape tracks the tensor shape flowing between layers during the model
// walk (c = 0 for flat vectors).
type tshape struct {
	c, h, w int
	flat    int
}

// absStage is one pipeline step in compiler-internal form: a linear map
// (mat != nil) or a polynomial activation (slaf != nil), with the tensor
// shapes at its boundaries. Compile and CompileSharded both lower the
// same abstract walk — matrices, biases, labels and coefficient layouts
// are byte-for-byte shared — which is what keeps the 1×1-grid sharded
// lowering identical to the unsharded one.
type absStage struct {
	label string
	// Linear: rows = out.flat, cols = in.flat.
	mat  *tensor.Tensor
	bias []float64
	// Activation: per-unit SLAF coefficients; unitOf maps a global flat
	// index (< in.flat) to its coefficient group.
	slaf   *nn.SLAF
	unitOf func(i int) int
	in, out tshape
}

// pendingLinear accumulates a linear map awaiting lowering (and possible
// collapsing with the next linear layer).
type pendingLinear struct {
	label   string
	mat     *tensor.Tensor
	bias    []float64
	in, out tshape
}

func (p *pendingLinear) abs() absStage {
	return absStage{label: p.label, mat: p.mat, bias: p.bias, in: p.in, out: p.out}
}

// buildAbstract walks the model layers into abstract stages: it detects
// the input shape, folds batch norms into their convolutions, collapses
// adjacent linear layers when enabled, absorbs the 1/255 pixel
// normalization into the first linear matrix (inputs are encrypted as
// raw [0, 255] pixels), and records the tensor shape at every stage
// boundary so sharded lowering can choose per-boundary manifests.
func buildAbstract(m *nn.Model, opts Options) (stages []absStage, input tshape, outputDim int, err error) {
	var cur tshape
	layers := m.Layers
	switch first := layers[0].(type) {
	case *nn.Conv2D:
		cur = tshape{c: first.InC, h: first.InH, w: first.InW, flat: first.InC * first.InH * first.InW}
	case *nn.Dense:
		cur = tshape{flat: first.In}
	case *nn.Flatten:
		if len(layers) < 2 {
			return nil, tshape{}, 0, fmt.Errorf("henn: model too short")
		}
		d, ok := layers[1].(*nn.Dense)
		if !ok {
			return nil, tshape{}, 0, fmt.Errorf("henn: flatten must precede a dense layer at the input")
		}
		cur = tshape{flat: d.In}
	default:
		return nil, tshape{}, 0, fmt.Errorf("henn: unsupported first layer %T", layers[0])
	}
	input = cur
	inputScale := 1.0 / 255

	var pending *pendingLinear
	// pushLinear queues a linear map, collapsing it into the pending one
	// when enabled: M2·(M1·x + b1) + b2 = (M2·M1)·x + (M2·b1 + b2).
	pushLinear := func(label string, mat *tensor.Tensor, bias []float64, in, out tshape) {
		applyInputScale(mat, &inputScale)
		if pending == nil {
			pending = &pendingLinear{label: label, mat: mat, bias: bias, in: in, out: out}
			return
		}
		if !opts.Collapse {
			stages = append(stages, pending.abs())
			pending = &pendingLinear{label: label, mat: mat, bias: bias, in: in, out: out}
			return
		}
		merged := tensor.MatMul(mat, pending.mat)
		mb := tensor.MatVec(mat, pending.bias)
		for i := range mb {
			mb[i] += bias[i]
		}
		pending = &pendingLinear{label: pending.label + "*" + label, mat: merged, bias: mb, in: pending.in, out: out}
	}
	flushPending := func() {
		if pending != nil {
			stages = append(stages, pending.abs())
			pending = nil
		}
	}

	for li := 0; li < len(layers); li++ {
		switch l := layers[li].(type) {
		case *nn.Conv2D:
			wt := tensor.FromSlice(l.W.Data, l.OutC, l.InC, l.K, l.K)
			mat, bias := tensor.ConvAsMatrix(wt, l.B.Data, l.InC, l.InH, l.InW, l.Stride, l.Pad)
			outShape := tshape{c: l.OutC, h: l.OutH(), w: l.OutW()}
			outShape.flat = outShape.c * outShape.h * outShape.w
			// Fold a following BatchNorm2D.
			label := fmt.Sprintf("conv%d", li)
			if li+1 < len(layers) {
				if bn, ok := layers[li+1].(*nn.BatchNorm2D); ok {
					scale, shift := bn.InferenceAffine()
					hw := outShape.h * outShape.w
					for r := 0; r < mat.Shape[0]; r++ {
						ch := r / hw
						for c := 0; c < mat.Shape[1]; c++ {
							mat.Data[r*mat.Shape[1]+c] *= scale[ch]
						}
						bias[r] = scale[ch]*bias[r] + shift[ch]
					}
					label += "+bn"
					li++
				}
			}
			pushLinear(label, mat, bias, cur, outShape)
			cur = outShape

		case *nn.MeanPool2D:
			mat := l.AsMatrix()
			out := tshape{c: l.InC, h: l.OutH(), w: l.OutW(), flat: l.InC * l.OutH() * l.OutW()}
			pushLinear(fmt.Sprintf("pool%d", li), mat, make([]float64, mat.Shape[0]), cur, out)
			cur = out

		case *nn.Dense:
			mat := tensor.FromSlice(append([]float64(nil), l.W.Data...), l.Out, l.In)
			bias := append([]float64(nil), l.B.Data...)
			out := tshape{flat: l.Out}
			pushLinear(fmt.Sprintf("dense%d", li), mat, bias, cur, out)
			cur = out
			outputDim = l.Out

		case *nn.SLAF:
			flushPending()
			sh := cur
			units := l.Units
			unitOf := func(i int) int {
				if units == 1 {
					return 0
				}
				if sh.c > 0 {
					return i / (sh.h * sh.w)
				}
				return i % units
			}
			stages = append(stages, absStage{
				label: fmt.Sprintf("slaf%d", li), slaf: l, unitOf: unitOf, in: sh, out: sh,
			})

		case *nn.Flatten:
			cur = tshape{flat: cur.flat}

		case *nn.BatchNorm2D:
			return nil, tshape{}, 0, fmt.Errorf("henn: batch norm at layer %d does not follow a convolution", li)

		case *nn.ReLU:
			return nil, tshape{}, 0, fmt.Errorf("henn: model still contains ReLU at layer %d; retrofit SLAFs first", li)

		default:
			return nil, tshape{}, 0, fmt.Errorf("henn: unsupported layer %T", l)
		}
	}
	flushPending()
	if outputDim == 0 {
		return nil, tshape{}, 0, fmt.Errorf("henn: model has no dense output layer")
	}
	return stages, input, outputDim, nil
}

// CompileWithOptions lowers a trained SLAF model to a homomorphic plan for
// the given slot count. The first linear layer absorbs the 1/255 pixel
// normalization (inputs are encrypted as raw [0, 255] pixels); batch
// normalization layers are folded into the preceding convolution.
func CompileWithOptions(m *nn.Model, slots int, opts Options) (*Plan, error) {
	abs, input, outputDim, err := buildAbstract(m, opts)
	if err != nil {
		return nil, err
	}
	plan := &Plan{Slots: slots, InputDim: input.flat, OutputDim: outputDim}
	for _, a := range abs {
		var st Stage
		if a.mat != nil {
			st, err = NewLinearStage(a.label, a.mat, a.bias, slots)
		} else {
			st, err = NewActStage(a.label, a.slaf, a.in.flat, a.unitOf, slots)
		}
		if err != nil {
			return nil, err
		}
		plan.Stages = append(plan.Stages, st)
	}
	for _, s := range plan.Stages {
		plan.Depth += s.Depth()
	}
	return plan, nil
}

// applyInputScale folds a pending input scaling into the first linear
// matrix (columns scaled), then clears it.
func applyInputScale(mat *tensor.Tensor, s *float64) {
	if *s == 1 {
		return
	}
	for i := range mat.Data {
		mat.Data[i] *= *s
	}
	*s = 1
}

// CheckDepth verifies the plan fits the engine's level budget.
func (p *Plan) CheckDepth(maxLevel int) error {
	if p.Depth > maxLevel {
		return fmt.Errorf("henn: plan needs %d levels but parameters provide %d", p.Depth, maxLevel)
	}
	return nil
}

// Describe returns a multi-line plan summary.
func (p *Plan) Describe() string {
	out := fmt.Sprintf("plan: %d stages, depth %d, %d rotations\n", len(p.Stages), p.Depth, len(p.Rotations()))
	for _, s := range p.Stages {
		out += "  " + s.Describe() + "\n"
	}
	return out
}
