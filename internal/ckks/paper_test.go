package ckks

import (
	"math"
	"math/rand"
	"testing"
)

// TestPaperParametersEndToEnd exercises the full Table II configuration
// (N=2^14, λ=128) through encode→encrypt→multiply→rescale→decrypt once.
// Slow (pure-Go NTTs at N=2^14); skipped with -short.
func TestPaperParametersEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale parameters are slow; run without -short")
	}
	p, err := PaperParameters()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	enc := NewEncoder(ctx)
	ept := NewEncryptor(ctx, pk, 2)
	dec := NewDecryptor(ctx, sk)
	ev := NewEvaluator(ctx, rlk, nil)

	rng := rand.New(rand.NewSource(3))
	n := p.Slots()
	a := randVec(rng, n, 2)
	b := randVec(rng, n, 2)
	cta := ept.Encrypt(enc.Encode(a, p.MaxLevel(), p.Scale))
	ctb := ept.Encrypt(enc.Encode(b, p.MaxLevel(), p.Scale))
	prod := ev.Rescale(ev.Mul(cta, ctb))
	got := enc.Decode(dec.DecryptNew(prod))
	// The paper's own settings are tight: Δ = 2^26 at N = 2^14 with a
	// 40-bit key-switching prime leaves ≈8 fractional bits after one
	// multiplication (fresh noise ≈2^19, key-switch noise ≈2^20 against
	// scale 2^26) — classification-grade, not high-precision.
	for i := 0; i < n; i += 97 {
		if math.Abs(got[i]-a[i]*b[i]) > 0.02 {
			t.Fatalf("paper-scale mul error at slot %d: %g vs %g", i, got[i], a[i]*b[i])
		}
	}
}
