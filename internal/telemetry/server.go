package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is a live observability endpoint over one registry:
//
//	/metrics         Prometheus text format
//	/metrics.json    the same snapshot as JSON
//	/debug/vars      expvar (memstats, cmdline, cnnhe_metrics)
//	/debug/requests  the flight recorder (recent request summaries)
//	/debug/pprof/    the standard pprof index, profiles and traces
//
// Serve also flips the process-wide Enabled flag on, so instrumented hot
// paths start feeding the registry.
type Server struct {
	// Addr is the bound address (useful with a ":0" listen request).
	Addr string

	ln  net.Listener
	srv *http.Server
}

var expvarOnce sync.Once

// Handler returns the observability mux for reg without binding a
// listener (for embedding into an existing server).
func Handler(reg *Registry) http.Handler {
	expvarOnce.Do(func() {
		expvar.Publish("cnnhe_metrics", expvar.Func(func() any { return Default().Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/debug/requests", Flight().Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "cnnhe telemetry\n\n/metrics\n/metrics.json\n/debug/vars\n/debug/requests\n/debug/pprof/\n")
	})
	return mux
}

// Serve binds addr (e.g. "localhost:0") and serves the observability
// endpoints for reg in a background goroutine until Close. Metric
// collection is enabled as a side effect.
func Serve(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		reg = Default()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	SetEnabled(true)
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the listener.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
