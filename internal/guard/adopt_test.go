package guard_test

import (
	"bytes"
	"errors"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/guard"
)

// TestAdoptWireCiphertext: a ciphertext that crossed the wire can be
// adopted into a guarded engine, evaluated, and the result unwrapped for
// serialization — the serve-side lifecycle of an encrypted request.
func TestAdoptWireCiphertext(t *testing.T) {
	plan := tinyPlan(t)
	e := rnsEngine(t, plan, 21)
	g := guard.New(e, guard.DefaultConfig())

	// Client side: encrypt and serialize.
	ct := e.EncryptVec([]float64{1, 2, 3})
	var buf bytes.Buffer
	if err := e.Ctx.WriteCiphertext(&buf, ct.(*ckks.Ciphertext)); err != nil {
		t.Fatal(err)
	}
	wire, err := e.Ctx.ReadCiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Without adoption the guard rejects the foreign handle.
	err = catchGuard(t, func() { g.Rotate(wire, 1) })
	if !errors.Is(err, guard.ErrForeignCiphertext) {
		t.Fatalf("want ErrForeignCiphertext, got %v", err)
	}
	if err := g.Reset(); err == nil {
		t.Fatal("foreign-ciphertext abort should have latched")
	}

	adopted, err := g.Adopt(wire)
	if err != nil {
		t.Fatal(err)
	}
	out := g.Add(adopted, adopted)
	under := guard.Underlying(out)
	if _, ok := under.(*ckks.Ciphertext); !ok {
		t.Fatalf("Underlying returned %T, want *ckks.Ciphertext", under)
	}
	got := e.Enc.Decode(e.Dec.DecryptNew(under.(*ckks.Ciphertext)))
	for i, want := range []float64{2, 4, 6} {
		if d := got[i] - want; d > 1e-3 || d < -1e-3 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], want)
		}
	}
	// Adopting an already-tracked handle is a no-op.
	again, err := g.Adopt(out)
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Fatal("re-adoption should return the same handle")
	}
}

// TestAdoptRejectsCorruptWithoutLatching: a malformed client ciphertext
// must be refused, and the refusal must not poison the engine for the
// next request.
func TestAdoptRejectsCorruptWithoutLatching(t *testing.T) {
	plan := tinyPlan(t)
	e := rnsEngine(t, plan, 22)
	g := guard.New(e, guard.DefaultConfig())

	ct := e.EncryptVec([]float64{1}).(*ckks.Ciphertext)
	// Corrupt a coefficient out of [0, q).
	ct.C0.Coeffs[0][0] = ^uint64(0)
	if _, err := g.Adopt(ct); err == nil {
		t.Fatal("corrupt ciphertext adopted")
	}
	if err := g.Err(); err != nil {
		t.Fatalf("rejected adoption latched the guard: %v", err)
	}

	// The engine still works.
	good, err := g.Adopt(e.EncryptVec([]float64{5}))
	if err != nil {
		t.Fatal(err)
	}
	g.Add(good, good)
}

// TestAdoptRefusesWhenLatched: a poisoned guard refuses new adoptions
// with the latched error (and does not clear it).
func TestAdoptRefusesWhenLatched(t *testing.T) {
	plan := tinyPlan(t)
	e := rnsEngine(t, plan, 23)
	g := guard.New(e, guard.DefaultConfig())

	catchGuard(t, func() { g.Rotate(e.EncryptVec([]float64{1}), 1) }) // foreign → latch
	if _, err := g.Adopt(e.EncryptVec([]float64{2})); err == nil {
		t.Fatal("latched guard accepted an adoption")
	}
	if g.Err() == nil {
		t.Fatal("adoption cleared a pre-existing latch")
	}
}
