package henn

import (
	"math"
	"math/rand"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/nn"
)

// poolModel: Conv(1→2, 3×3, s2, 8×8) → SLAF → MeanPool(2,2) →
// Dense(8→4): the pool and dense layers are adjacent linears, so
// collapsing merges them.
func poolModel(seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D(rng, 1, 2, 3, 1, 0, 8, 8) // 2×6×6
	pool := nn.NewMeanPool2D(2, 2, 2, 6, 6)        // 2×3×3 = 18
	m := &nn.Model{Layers: []nn.Layer{
		conv,
		nn.NewReLU(),
		pool,
		nn.NewFlatten(),
		nn.NewDense(rng, 18, 4),
	}}
	hm := m.ReplaceReLUWithSLAF(2, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	return hm
}

func TestCollapseReducesDepthAndStages(t *testing.T) {
	m := poolModel(21)
	collapsed, err := CompileWithOptions(m, 512, Options{Collapse: true})
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := CompileWithOptions(m, 512, Options{Collapse: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(collapsed.Stages) != len(expanded.Stages)-1 {
		t.Fatalf("collapse should save one stage: %d vs %d", len(collapsed.Stages), len(expanded.Stages))
	}
	if collapsed.Depth != expanded.Depth-1 {
		t.Fatalf("collapse should save one level: %d vs %d", collapsed.Depth, expanded.Depth)
	}
}

func TestCollapsedPlanMatchesExpanded(t *testing.T) {
	m := poolModel(22)
	collapsed, err := CompileWithOptions(m, 512, Options{Collapse: true})
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := CompileWithOptions(m, 512, Options{Collapse: false})
	if err != nil {
		t.Fatal(err)
	}
	// One engine with the union of rotations serves both plans.
	rots := map[int]bool{}
	for _, r := range append(collapsed.Rotations(), expanded.Rotations()...) {
		rots[r] = true
	}
	var all []int
	for r := range rots {
		all = append(all, r)
	}
	plan := &Plan{Slots: 512, Depth: expanded.Depth}
	_ = plan
	e := rnsEngineForRotations(t, all, expanded.Depth)

	rng := rand.New(rand.NewSource(23))
	img := testImage(rng, 64)
	a, _ := collapsed.Infer(e, img)
	b, _ := expanded.Infer(e, img)
	want := plainForward(m, img, 1, 8, 8)
	for i := range want {
		if math.Abs(a[i]-want[i]) > 0.05 || math.Abs(b[i]-want[i]) > 0.05 {
			t.Fatalf("logit %d: collapsed %g expanded %g want %g", i, a[i], b[i], want[i])
		}
	}
}

func rnsEngineForRotations(t testing.TB, rotations []int, depth int) *RNSEngine {
	t.Helper()
	bits := []int{40}
	for i := 0; i < depth-1; i++ {
		bits = append(bits, 30)
	}
	bits = append(bits, 40)
	p, err := ckks.NewParameters(10, bits, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewRNSEngine(p, rotations, 701)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
