package guard

import (
	"context"
	"errors"
	"log/slog"
	"math"

	"cnnhe/internal/henn"
	"cnnhe/internal/telemetry"
)

// stageTel caches the per-stage gauges so the per-op hot path never
// takes the registry lock: gauges are resolved once per stage
// transition (BeginStage) and updated with plain atomic stores.
type stageTel struct {
	noise *telemetry.Gauge
	level *telemetry.Gauge
	scale *telemetry.Gauge
}

// telBeginStage resolves the per-stage gauges for name, or clears the
// current set when telemetry is disabled.
func (g *GuardedEngine) telBeginStage(name string) {
	if !telemetry.Enabled() {
		g.curTel.Store(nil)
		return
	}
	g.telMu.Lock()
	defer g.telMu.Unlock()
	if g.stageTels == nil {
		g.stageTels = map[string]*stageTel{}
	}
	st, ok := g.stageTels[name]
	if !ok {
		r := telemetry.Default()
		l := telemetry.L("stage", name)
		st = &stageTel{
			noise: r.Gauge("cnnhe_guard_stage_noise_bits",
				"remaining noise budget (log2 scale/noise) of the stage's last op result", l),
			level: r.Gauge("cnnhe_guard_stage_level",
				"ciphertext level of the stage's last op result", l),
			scale: r.Gauge("cnnhe_guard_stage_scale_log2",
				"log2 ciphertext scale of the stage's last op result", l),
		}
		g.stageTels[name] = st
	}
	g.curTel.Store(st)
}

// telOut publishes the op result's health onto the current stage's
// gauges. bits is the already-computed remaining noise budget.
func (g *GuardedEngine) telOut(ct henn.Ct, bits, scale float64) {
	st := g.curTel.Load()
	if st == nil {
		return
	}
	st.noise.Set(bits)
	st.scale.Set(math.Log2(scale))
	st.level.Set(float64(g.inner.Level(ct)))
}

// telConfigured publishes the guard's enforcement threshold (once per
// New; gauges are idempotent so repeated guards just re-set it).
func (g *GuardedEngine) telConfigured() {
	if !telemetry.Enabled() {
		return
	}
	telemetry.Default().Gauge("cnnhe_guard_min_noise_bits",
		"noise-budget enforcement threshold (Config.MinNoiseBits)").Set(g.cfg.MinNoiseBits)
}

// telFailure counts a guard abort by failure class and logs it with
// the run's trace identity so the abort can be joined to the request
// that caused it. Failures are rare, so the registry lookup and the
// log line both happen inline.
func (g *GuardedEngine) telFailure(cause error) {
	g.mu.Lock()
	stage := g.stage
	rctx := g.runCtx
	g.mu.Unlock()
	if rctx == nil {
		rctx = g.cfg.Ctx
	}
	args := []any{"class", failureClass(cause), "stage", stage, "err", cause.Error()}
	if tc, ok := telemetry.TraceContextFrom(rctx); ok {
		args = append(args, "trace_id", tc.TraceIDString(), "request_id", tc.SpanIDString())
	}
	slog.Warn("guard abort", args...)
	if !telemetry.Enabled() {
		return
	}
	telemetry.Default().Counter("cnnhe_guard_failures_total",
		"guard aborts by failure class",
		telemetry.L("class", failureClass(cause))).Inc()
}

// failureClass maps a guard abort cause to a stable metric label.
func failureClass(cause error) string {
	switch {
	case errors.Is(cause, ErrNoiseBudgetExhausted):
		return "noise_exhausted"
	case errors.Is(cause, ErrLevelExhausted):
		return "level_exhausted"
	case errors.Is(cause, ErrScaleDrift):
		return "scale_drift"
	case errors.Is(cause, ErrResidueMissing):
		return "residue_missing"
	case errors.Is(cause, ErrCorruptCiphertext):
		return "corrupt_ciphertext"
	case errors.Is(cause, ErrInvalidPlaintext):
		return "invalid_plaintext"
	case errors.Is(cause, ErrEnginePanic):
		return "engine_panic"
	case errors.Is(cause, ErrForeignCiphertext):
		return "foreign_ciphertext"
	case errors.Is(cause, context.Canceled), errors.Is(cause, context.DeadlineExceeded):
		return "context"
	}
	return "other"
}
