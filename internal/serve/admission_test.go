package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// postClassifyDeadline is postClassify with an X-Request-Deadline header.
func postClassifyDeadline(t testing.TB, url string, image []float64, deadline string) *http.Response {
	t.Helper()
	body, err := json.Marshal(ClassifyRequest{Image: image})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/classify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderRequestDeadline, deadline)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAdmissionAIMD exercises the controller's core dynamics: additive
// growth under the target, multiplicative shrink above it (and on
// failures), both clamped to the configured bounds.
func TestAdmissionAIMD(t *testing.T) {
	a := newAdmission(16, 4, 100*time.Millisecond)
	if a.limitNow() != 16 {
		t.Fatalf("initial limit %v, want the queue size", a.limitNow())
	}
	// A fast batch cannot push the limit past the hard queue bound.
	a.observe(10*time.Millisecond, true)
	if a.limitNow() != 16 {
		t.Fatalf("limit grew past the ceiling: %v", a.limitNow())
	}
	// Slow batches halve the limit each time, down to one batch's worth.
	for i := 0; i < 10; i++ {
		a.observe(time.Second, true)
	}
	if a.limitNow() != 4 {
		t.Fatalf("limit %v after sustained overload, want the floor 4", a.limitNow())
	}
	// Recovery is additive: one fast batch, one more slot.
	a.observe(10*time.Millisecond, true)
	if a.limitNow() != 5 {
		t.Fatalf("limit %v after one fast batch, want 5", a.limitNow())
	}
	// A failed batch shrinks regardless of latency.
	a.observe(time.Millisecond, false)
	if a.limitNow() != 4 {
		t.Fatalf("limit %v after a failed batch, want 4", a.limitNow())
	}
}

// TestAdmissionLimitRejects: outstanding requests beyond the AIMD limit
// are refused with ErrQueueFull; released slots admit again.
func TestAdmissionLimitRejects(t *testing.T) {
	a := newAdmission(2, 1, time.Second)
	now := time.Now()
	if err := a.admit(now, time.Time{}, false); err != nil {
		t.Fatal(err)
	}
	if err := a.admit(now, time.Time{}, false); err != nil {
		t.Fatal(err)
	}
	if err := a.admit(now, time.Time{}, false); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull at the limit, got %v", err)
	}
	a.release()
	if err := a.admit(now, time.Time{}, false); err != nil {
		t.Fatalf("released slot should admit: %v", err)
	}
}

// TestAdmissionShedsUnmeetableDeadline: once batch latency is known, a
// request whose deadline falls inside the predicted completion time is
// shed before it ever occupies a queue slot — and a deadline with
// headroom is still admitted.
func TestAdmissionShedsUnmeetableDeadline(t *testing.T) {
	a := newAdmission(16, 2, time.Minute)
	now := time.Now()
	// Cold start: no latency evidence, deadlines are taken on faith.
	if err := a.admit(now, now.Add(time.Nanosecond), true); err != nil {
		t.Fatalf("cold-start admission should not shed: %v", err)
	}
	a.release()
	a.observe(100*time.Millisecond, true)
	// One batch ahead (est 100ms), deadline in 10ms: unmeetable.
	if err := a.admit(now, now.Add(10*time.Millisecond), true); !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("want ErrDeadlineUnmeetable, got %v", err)
	}
	// Same load, deadline in 1s: fine.
	if err := a.admit(now, now.Add(time.Second), true); err != nil {
		t.Fatalf("meetable deadline rejected: %v", err)
	}
}

// TestAdmissionRetryAfterTracksBacklog: the hint is the fallback before
// any evidence, then backlog × observed latency afterwards.
func TestAdmissionRetryAfterTracksBacklog(t *testing.T) {
	a := newAdmission(16, 2, time.Minute)
	if got := a.retryAfter(7 * time.Second); got != 7*time.Second {
		t.Fatalf("cold-start hint %v, want the fallback", got)
	}
	a.observe(2*time.Second, true)
	now := time.Now()
	for i := 0; i < 4; i++ {
		if err := a.admit(now, time.Time{}, false); err != nil {
			t.Fatal(err)
		}
	}
	// 4 outstanding / batch 2 = 2 batches ahead + own = 3 × 2s.
	if got := a.retryAfter(time.Second); got != 6*time.Second {
		t.Fatalf("hint %v, want 6s from live depth", got)
	}
}

// TestServeDeadlineHeaderShed: an X-Request-Deadline the live model
// cannot meet returns 503 with a Retry-After priced from the observed
// batch latency, without consuming an evaluation.
func TestServeDeadlineHeaderShed(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	rng := rand.New(rand.NewSource(71))
	// Prime the latency model with one real batch.
	if _, _, err := s.Submit(context.Background(), testImage(rng, 64)); err != nil {
		t.Fatal(err)
	}
	if s.adm.ewmaNow() <= 0 {
		t.Fatal("batch latency not observed")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postClassifyDeadline(t, ts.URL, testImage(rng, 64), time.Nanosecond.String())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 for an unmeetable deadline, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After hint")
	}

	// A generous deadline still classifies normally.
	resp2 := postClassifyDeadline(t, ts.URL, testImage(rng, 64), "30s")
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("meetable deadline: want 200, got %d", resp2.StatusCode)
	}
}

// TestServeDeadlineHeaderMalformed is the 400 path: garbage deadlines
// are the client's problem, not a queue slot.
func TestServeDeadlineHeaderMalformed(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewSource(72))
	resp := postClassifyDeadline(t, ts.URL, testImage(rng, 64), "not-a-deadline")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("want 400 for a malformed deadline, got %d", resp.StatusCode)
	}
}

// TestServeAdaptiveLimitShrinksUnderSlowBatches drives the server-level
// integration: with a target the engine cannot meet, each batch halves
// the admitted concurrency until requests are rejected well before the
// hard queue bound.
func TestServeAdaptiveLimitShrinksUnderSlowBatches(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: time.Millisecond,
		QueueSize: 32, TargetLatency: time.Nanosecond}) // every batch is "slow"
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 6; i++ {
		if _, _, err := s.Submit(context.Background(), testImage(rng, 64)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if got := s.adm.limitNow(); got != 2 {
		t.Fatalf("limit %v after sustained slow batches, want the floor 2", got)
	}
}
