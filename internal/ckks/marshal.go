package ckks

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cnnhe/internal/ring"
)

// Wire format: every object begins with a one-byte tag and carries its
// structural metadata explicitly, so a decode against mismatched
// parameters fails loudly instead of corrupting data. Limb coefficient
// vectors are written as raw little-endian uint64 words.

const (
	tagCiphertext byte = 0xC7
	tagPublicKey  byte = 0xB0
	tagSwitchKey  byte = 0x5E
)

func writeUint64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readUint64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// writePoly writes the given limbs of p.
func writePoly(w io.Writer, rg *ring.Ring, limbs []int, p *ring.Poly) error {
	if err := writeUint64(w, uint64(len(limbs))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, li := range limbs {
		if err := writeUint64(w, uint64(li)); err != nil {
			return err
		}
		coeffs := p.Coeffs[li]
		if err := writeUint64(w, uint64(len(coeffs))); err != nil {
			return err
		}
		for _, c := range coeffs {
			binary.LittleEndian.PutUint64(buf, c)
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// readPoly reads limbs into a polynomial allocated for maxLevel with
// specials.
func readPoly(r io.Reader, rg *ring.Ring, level int) (*ring.Poly, error) {
	nLimbs, err := readUint64(r)
	if err != nil {
		return nil, err
	}
	p := rg.NewPoly(level)
	for i := uint64(0); i < nLimbs; i++ {
		li, err := readUint64(r)
		if err != nil {
			return nil, err
		}
		if int(li) >= len(p.Coeffs) {
			return nil, fmt.Errorf("ckks: limb index %d out of range", li)
		}
		n, err := readUint64(r)
		if err != nil {
			return nil, err
		}
		if p.Coeffs[li] == nil || uint64(len(p.Coeffs[li])) != n {
			return nil, fmt.Errorf("ckks: limb %d length mismatch (%d)", li, n)
		}
		buf := make([]byte, 8*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		for j := range p.Coeffs[li] {
			p.Coeffs[li][j] = binary.LittleEndian.Uint64(buf[8*j:])
		}
	}
	return p, nil
}

// WriteCiphertext serializes ct.
func (ctx *Context) WriteCiphertext(w io.Writer, ct *Ciphertext) error {
	if _, err := w.Write([]byte{tagCiphertext}); err != nil {
		return err
	}
	if err := writeUint64(w, uint64(ct.Level)); err != nil {
		return err
	}
	if err := writeUint64(w, math.Float64bits(ct.Scale)); err != nil {
		return err
	}
	limbs := ctx.R.Limbs(ct.Level, false)
	if err := writePoly(w, ctx.R, limbs, ct.C0); err != nil {
		return err
	}
	return writePoly(w, ctx.R, limbs, ct.C1)
}

// ReadCiphertext deserializes a ciphertext produced by WriteCiphertext
// under the same parameters.
func (ctx *Context) ReadCiphertext(r io.Reader) (*Ciphertext, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, err
	}
	if tag[0] != tagCiphertext {
		return nil, fmt.Errorf("ckks: bad ciphertext tag 0x%02x", tag[0])
	}
	level64, err := readUint64(r)
	if err != nil {
		return nil, err
	}
	level := int(level64)
	if level < 0 || level > ctx.Params.MaxLevel() {
		return nil, fmt.Errorf("ckks: level %d out of range", level)
	}
	scaleBits, err := readUint64(r)
	if err != nil {
		return nil, err
	}
	c0, err := readPoly(r, ctx.R, level)
	if err != nil {
		return nil, err
	}
	c1, err := readPoly(r, ctx.R, level)
	if err != nil {
		return nil, err
	}
	return &Ciphertext{C0: c0, C1: c1, Level: level, Scale: math.Float64frombits(scaleBits)}, nil
}

// WritePublicKey serializes pk.
func (ctx *Context) WritePublicKey(w io.Writer, pk *PublicKey) error {
	if _, err := w.Write([]byte{tagPublicKey}); err != nil {
		return err
	}
	limbs := ctx.R.Limbs(ctx.Params.MaxLevel(), true)
	if err := writePoly(w, ctx.R, limbs, pk.B); err != nil {
		return err
	}
	return writePoly(w, ctx.R, limbs, pk.A)
}

// ReadPublicKey deserializes a public key.
func (ctx *Context) ReadPublicKey(r io.Reader) (*PublicKey, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, err
	}
	if tag[0] != tagPublicKey {
		return nil, fmt.Errorf("ckks: bad public key tag 0x%02x", tag[0])
	}
	b, err := readPoly(r, ctx.R, ctx.Params.MaxLevel())
	if err != nil {
		return nil, err
	}
	a, err := readPoly(r, ctx.R, ctx.Params.MaxLevel())
	if err != nil {
		return nil, err
	}
	return &PublicKey{B: b, A: a}, nil
}

// WriteSwitchingKey serializes a switching key (relinearization or
// rotation key material).
func (ctx *Context) WriteSwitchingKey(w io.Writer, swk *SwitchingKey) error {
	if _, err := w.Write([]byte{tagSwitchKey}); err != nil {
		return err
	}
	if err := writeUint64(w, uint64(len(swk.B))); err != nil {
		return err
	}
	limbs := ctx.R.Limbs(ctx.Params.MaxLevel(), true)
	for i := range swk.B {
		if err := writePoly(w, ctx.R, limbs, swk.B[i]); err != nil {
			return err
		}
		if err := writePoly(w, ctx.R, limbs, swk.A[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadSwitchingKey deserializes a switching key.
func (ctx *Context) ReadSwitchingKey(r io.Reader) (*SwitchingKey, error) {
	var tag [1]byte
	if _, err := io.ReadFull(r, tag[:]); err != nil {
		return nil, err
	}
	if tag[0] != tagSwitchKey {
		return nil, fmt.Errorf("ckks: bad switching key tag 0x%02x", tag[0])
	}
	n, err := readUint64(r)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > uint64(ctx.Params.MaxLevel()+1) {
		return nil, fmt.Errorf("ckks: switching key digit count %d out of range", n)
	}
	swk := &SwitchingKey{}
	for i := uint64(0); i < n; i++ {
		b, err := readPoly(r, ctx.R, ctx.Params.MaxLevel())
		if err != nil {
			return nil, err
		}
		a, err := readPoly(r, ctx.R, ctx.Params.MaxLevel())
		if err != nil {
			return nil, err
		}
		swk.B = append(swk.B, b)
		swk.A = append(swk.A, a)
	}
	return swk, nil
}
