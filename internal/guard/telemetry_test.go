package guard_test

import (
	"context"
	"math"
	"testing"

	"cnnhe/internal/guard"
	"cnnhe/internal/telemetry"
)

// TestExecutorReportNoiseBits is the regression pin for StageReport
// noise population on the executor path: every recorded stage of a
// guarded InferCtx run (which lowers to the op-graph executor) must
// carry a real NoiseBits value, not NaN — the guard implements
// henn.NoiseAware and the executor must consult it for stage outputs.
func TestExecutorReportNoiseBits(t *testing.T) {
	plan := tinyPlan(t)
	e := rnsEngine(t, plan, 15)
	g := guard.New(e, guard.DefaultConfig())
	img := testImage(1, plan.InputDim)
	_, rep, err := plan.InferCtx(context.Background(), g, img)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) == 0 {
		t.Fatal("no stage rows in report")
	}
	for _, st := range rep.Stages {
		if math.IsNaN(st.NoiseBits) {
			t.Errorf("stage %q: NoiseBits is NaN on the executor path", st.Stage)
		}
		if st.Level < 0 || st.Scale <= 0 {
			t.Errorf("stage %q: level %d scale %v", st.Stage, st.Level, st.Scale)
		}
	}
}

// TestGuardGauges checks the per-stage health gauges and the threshold
// gauge a guarded run publishes when telemetry is enabled.
func TestGuardGauges(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)

	plan := tinyPlan(t)
	e := rnsEngine(t, plan, 15)
	g := guard.New(e, guard.DefaultConfig())
	img := testImage(1, plan.InputDim)
	if _, _, err := plan.InferCtx(context.Background(), g, img); err != nil {
		t.Fatal(err)
	}

	snap := telemetry.Default().Snapshot()
	min, ok := snap.Family("cnnhe_guard_min_noise_bits")
	if !ok || len(min.Series) != 1 {
		t.Fatal("cnnhe_guard_min_noise_bits not published")
	}
	if got := min.Series[0].Value; got != guard.DefaultMinNoiseBits {
		t.Errorf("min_noise_bits gauge %v, want %v", got, float64(guard.DefaultMinNoiseBits))
	}
	noise, ok := snap.Family("cnnhe_guard_stage_noise_bits")
	if !ok || len(noise.Series) == 0 {
		t.Fatal("cnnhe_guard_stage_noise_bits not published")
	}
	for _, s := range noise.Series {
		if s.Label("stage") == "" {
			t.Error("noise gauge series without a stage label")
		}
		if math.IsNaN(s.Value) {
			t.Errorf("stage %q noise gauge is NaN", s.Label("stage"))
		}
	}
	for _, name := range []string{"cnnhe_guard_stage_level", "cnnhe_guard_stage_scale_log2"} {
		if f, ok := snap.Family(name); !ok || len(f.Series) == 0 {
			t.Errorf("%s not published", name)
		}
	}
}

// TestGuardFailureCounter checks aborts are counted by class.
func TestGuardFailureCounter(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	before := telemetry.Default().Snapshot()

	plan := tinyPlan(t)
	e := rnsEngine(t, plan, 15)
	g := guard.New(e, guard.DefaultConfig())
	err := catchGuard(t, func() { g.DecryptVec("not a ciphertext") })
	if err == nil {
		t.Fatal("foreign ciphertext not rejected")
	}

	diff := telemetry.Default().Snapshot().Sub(before)
	f, ok := diff.Family("cnnhe_guard_failures_total")
	if !ok {
		t.Fatal("cnnhe_guard_failures_total not registered")
	}
	var n float64
	for _, s := range f.Series {
		if s.Label("class") == "foreign_ciphertext" {
			n = s.Value
		}
	}
	if n != 1 {
		t.Errorf("failures_total{class=foreign_ciphertext} = %v, want 1", n)
	}
}
