// Package henn evaluates trained CNNs homomorphically: the paper's
// privacy-preserving CNN-HE and CNN-HE-RNS models.
//
// A trained internal/nn model is compiled into a Plan — a sequence of
// homomorphic stages over a single packed ciphertext holding the flattened
// activation vector. Every linear layer (convolutions included, with batch
// normalization and input scaling folded in) becomes an explicit
// slots×slots matrix evaluated by the Halevi–Shoup diagonal method with
// baby-step/giant-step rotations; every SLAF activation becomes a depth-2
// polynomial evaluation with per-unit coefficient vectors.
//
// The same Plan runs on two interchangeable engines: the RNS engine
// (internal/ckks, the paper's CKKS-RNS) and the multiprecision baseline
// engine (internal/ckksbig, original CKKS). Their latency difference on
// identical plans is the paper's CNN-HE vs CNN-HE-RNS comparison
// (Tables III and V).
package henn

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn/ir"
)

// Ct is an opaque ciphertext handle owned by an Engine. It aliases ir.Ct
// so compiled plans, lowered graphs, and the executor share one handle
// type across packages.
type Ct = ir.Ct

// Pt is an opaque pre-encoded plaintext handle (see Engine.EncodeVecsAt).
type Pt = ir.Pt

// PlainSpec describes one plaintext vector to pre-encode at an exact
// (level, scale).
type PlainSpec = ir.PlainSpec

// Engine abstracts the two CKKS backends behind the operations the
// compiled plans and lowered op graphs need; see ir.Engine for the full
// method contract.
type Engine = ir.Engine

// ptCacheKey identifies a cached plaintext encoding.
type ptCacheKey struct {
	key   string
	level int
	scale float64
}

// RNSEngine is the CKKS-RNS backend (internal/ckks).
type RNSEngine struct {
	Ctx *ckks.Context
	Enc *ckks.Encoder
	Ept *ckks.Encryptor
	Dec *ckks.Decryptor
	Ev  *ckks.Evaluator
	SK  *ckks.SecretKey

	mu      sync.Mutex
	ptCache map[ptCacheKey]*ckks.Plaintext
}

// NewRNSEngine builds a full CKKS-RNS deployment (keys for the given
// rotations) over params.
func NewRNSEngine(params ckks.Parameters, rotations []int, seed int64) (*RNSEngine, error) {
	ctx, err := ckks.NewContext(params)
	if err != nil {
		return nil, err
	}
	kg := ckks.NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	var rtk *ckks.RotationKeySet
	if len(rotations) > 0 {
		rtk = kg.GenRotationKeys(sk, rotations, false)
	}
	return &RNSEngine{
		Ctx:     ctx,
		Enc:     ckks.NewEncoder(ctx),
		Ept:     ckks.NewEncryptor(ctx, pk, seed+1),
		Dec:     ckks.NewDecryptor(ctx, sk),
		Ev:      ckks.NewEvaluator(ctx, rlk, rtk),
		SK:      sk,
		ptCache: map[ptCacheKey]*ckks.Plaintext{},
	}, nil
}

func (e *RNSEngine) cachedPlaintext(key string, level int, scale float64, v []float64) *ckks.Plaintext {
	k := ptCacheKey{key, level, scale}
	e.mu.Lock()
	pt, ok := e.ptCache[k]
	e.mu.Unlock()
	if ok {
		return pt
	}
	pt = e.Enc.Encode(v, level, scale)
	e.mu.Lock()
	e.ptCache[k] = pt
	e.mu.Unlock()
	return pt
}

// MulPlainVecCached implements Engine.
func (e *RNSEngine) MulPlainVecCached(ct Ct, key string, v []float64, scale float64) Ct {
	c := ct.(*ckks.Ciphertext)
	return e.Ev.MulPlain(c, e.cachedPlaintext(key, c.Level, scale, v))
}

// AddPlainVecCached implements Engine.
func (e *RNSEngine) AddPlainVecCached(ct Ct, key string, v []float64) Ct {
	c := ct.(*ckks.Ciphertext)
	return e.Ev.AddPlain(c, e.cachedPlaintext(key, c.Level, c.Scale, v))
}

// Name implements Engine.
func (e *RNSEngine) Name() string { return "ckks-rns" }

// Slots implements Engine.
func (e *RNSEngine) Slots() int { return e.Ctx.Params.Slots() }

// MaxLevel implements Engine.
func (e *RNSEngine) MaxLevel() int { return e.Ctx.Params.MaxLevel() }

// Scale implements Engine.
func (e *RNSEngine) Scale() float64 { return e.Ctx.Params.Scale }

// QiFloat implements Engine.
func (e *RNSEngine) QiFloat(level int) float64 { return e.Ctx.Params.QiFloat(level) }

// SpecialPFloat returns the key-switching modulus P as a float64 (used by
// the guard's key-switch noise bound).
func (e *RNSEngine) SpecialPFloat() float64 {
	f, _ := new(big.Float).SetInt(e.Ctx.Params.Chain.P()).Float64()
	return f
}

// EncryptVec implements Engine.
func (e *RNSEngine) EncryptVec(values []float64) Ct {
	pt := e.Enc.Encode(values, e.MaxLevel(), e.Scale())
	return e.Ept.Encrypt(pt)
}

// DecryptVec implements Engine.
func (e *RNSEngine) DecryptVec(ct Ct) []float64 {
	return e.Enc.Decode(e.Dec.DecryptNew(ct.(*ckks.Ciphertext)))
}

// Level implements Engine.
func (e *RNSEngine) Level(ct Ct) int { return ct.(*ckks.Ciphertext).Level }

// ScaleOf implements Engine.
func (e *RNSEngine) ScaleOf(ct Ct) float64 { return ct.(*ckks.Ciphertext).Scale }

// Add implements Engine.
func (e *RNSEngine) Add(a, b Ct) Ct {
	return e.Ev.Add(a.(*ckks.Ciphertext), b.(*ckks.Ciphertext))
}

// AddPlainVec implements Engine.
func (e *RNSEngine) AddPlainVec(ct Ct, v []float64) Ct {
	c := ct.(*ckks.Ciphertext)
	pt := e.Enc.Encode(v, c.Level, c.Scale)
	return e.Ev.AddPlain(c, pt)
}

// MulPlainVecAtScale implements Engine.
func (e *RNSEngine) MulPlainVecAtScale(ct Ct, v []float64, scale float64) Ct {
	c := ct.(*ckks.Ciphertext)
	pt := e.Enc.Encode(v, c.Level, scale)
	return e.Ev.MulPlain(c, pt)
}

// MulRelin implements Engine.
func (e *RNSEngine) MulRelin(a, b Ct) Ct {
	return e.Ev.Mul(a.(*ckks.Ciphertext), b.(*ckks.Ciphertext))
}

// MulInt implements Engine.
func (e *RNSEngine) MulInt(ct Ct, n int64) Ct {
	return e.Ev.MulInt(ct.(*ckks.Ciphertext), n)
}

// Recombine implements ir.Recombiner: Σᵢ weights[i]·args[i] as one
// fused engine call, accumulating the same residues the MulInt/Add
// chain would (elided MulInt for weight 1 is a residue identity), so
// the result is bit-identical to the unfused evaluation.
func (e *RNSEngine) Recombine(args []Ct, weights []int64) Ct {
	acc := args[0].(*ckks.Ciphertext) // weights[0] = 1
	for i := 1; i < len(args); i++ {
		c := args[i].(*ckks.Ciphertext)
		if weights[i] != 1 {
			c = e.Ev.MulInt(c, weights[i])
		}
		acc = e.Ev.Add(acc, c)
	}
	return acc
}

// Rescale implements Engine.
func (e *RNSEngine) Rescale(ct Ct) Ct { return e.Ev.Rescale(ct.(*ckks.Ciphertext)) }

// DropLevel implements Engine.
func (e *RNSEngine) DropLevel(ct Ct, n int) Ct { return e.Ev.DropLevel(ct.(*ckks.Ciphertext), n) }

// Rotate implements Engine.
func (e *RNSEngine) Rotate(ct Ct, k int) Ct {
	if k == 0 {
		return ct
	}
	return e.Ev.Rotate(ct.(*ckks.Ciphertext), k)
}

// RotateMany implements Engine using hoisted rotations.
func (e *RNSEngine) RotateMany(ct Ct, ks []int) map[int]Ct {
	c := ct.(*ckks.Ciphertext)
	outs := e.Ev.RotateHoisted(c, nonZero(ks))
	m := make(map[int]Ct, len(ks))
	for _, k := range ks {
		if k == 0 {
			m[0] = ct
			continue
		}
		m[k] = outs[k]
	}
	return m
}

// EncodeVecsAt implements Engine: the ahead-of-time encoding pass. The
// encoder is stateless, so the batch is encoded on all CPUs.
func (e *RNSEngine) EncodeVecsAt(specs []PlainSpec) []Pt {
	es := make([]ckks.EncodeSpec, len(specs))
	for i, s := range specs {
		es[i] = ckks.EncodeSpec{Values: s.Values, Level: s.Level, Scale: s.Scale}
	}
	pts := e.Enc.EncodeBatch(es, runtime.NumCPU())
	out := make([]Pt, len(pts))
	for i, pt := range pts {
		out[i] = pt
	}
	return out
}

// MulPlainPt implements Engine.
func (e *RNSEngine) MulPlainPt(ct Ct, pt Pt) Ct {
	return e.Ev.MulPlain(ct.(*ckks.Ciphertext), pt.(*ckks.Plaintext))
}

// AddPlainPt implements Engine.
func (e *RNSEngine) AddPlainPt(ct Ct, pt Pt) Ct {
	return e.Ev.AddPlain(ct.(*ckks.Ciphertext), pt.(*ckks.Plaintext))
}

func nonZero(ks []int) []int {
	out := ks[:0:0]
	for _, k := range ks {
		if k != 0 {
			out = append(out, k)
		}
	}
	return out
}

// BigEngine is the multiprecision (non-RNS) baseline backend.
type BigEngine struct {
	Ctx *ckksbig.Context
	Enc *ckksbig.Encoder
	Ept *ckksbig.Encryptor
	Dec *ckksbig.Decryptor
	Ev  *ckksbig.Evaluator
	SK  *ckksbig.SecretKey

	mu      sync.Mutex
	ptCache map[ptCacheKey]*ckksbig.Plaintext
}

// NewBigEngine builds the baseline deployment.
func NewBigEngine(params ckksbig.Parameters, rotations []int, seed int64) (*BigEngine, error) {
	ctx, err := ckksbig.NewContext(params)
	if err != nil {
		return nil, err
	}
	kg := ckksbig.NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	var rtk *ckksbig.RotationKeySet
	if len(rotations) > 0 {
		rtk = kg.GenRotationKeys(sk, rotations, false)
	}
	return &BigEngine{
		Ctx:     ctx,
		Enc:     ckksbig.NewEncoder(ctx),
		Ept:     ckksbig.NewEncryptor(ctx, pk, seed+1),
		Dec:     ckksbig.NewDecryptor(ctx, sk),
		Ev:      ckksbig.NewEvaluator(ctx, rlk, rtk),
		SK:      sk,
		ptCache: map[ptCacheKey]*ckksbig.Plaintext{},
	}, nil
}

func (e *BigEngine) cachedPlaintext(key string, level int, scale float64, v []float64) *ckksbig.Plaintext {
	k := ptCacheKey{key, level, scale}
	e.mu.Lock()
	pt, ok := e.ptCache[k]
	e.mu.Unlock()
	if ok {
		return pt
	}
	pt = e.Enc.Encode(v, level, scale)
	e.mu.Lock()
	e.ptCache[k] = pt
	e.mu.Unlock()
	return pt
}

// MulPlainVecCached implements Engine.
func (e *BigEngine) MulPlainVecCached(ct Ct, key string, v []float64, scale float64) Ct {
	c := ct.(*ckksbig.Ciphertext)
	return e.Ev.MulPlain(c, e.cachedPlaintext(key, c.Level, scale, v))
}

// AddPlainVecCached implements Engine.
func (e *BigEngine) AddPlainVecCached(ct Ct, key string, v []float64) Ct {
	c := ct.(*ckksbig.Ciphertext)
	return e.Ev.AddPlain(c, e.cachedPlaintext(key, c.Level, c.Scale, v))
}

// Name implements Engine.
func (e *BigEngine) Name() string { return "ckks-big" }

// Slots implements Engine.
func (e *BigEngine) Slots() int { return e.Ctx.Params.Slots() }

// MaxLevel implements Engine.
func (e *BigEngine) MaxLevel() int { return e.Ctx.Params.MaxLevel() }

// Scale implements Engine.
func (e *BigEngine) Scale() float64 { return e.Ctx.Params.Scale }

// QiFloat implements Engine.
func (e *BigEngine) QiFloat(level int) float64 { return e.Ctx.Params.QiFloat(level) }

// SpecialPFloat returns the key-switching modulus P as a float64 (used by
// the guard's key-switch noise bound).
func (e *BigEngine) SpecialPFloat() float64 {
	f, _ := new(big.Float).SetInt(e.Ctx.P).Float64()
	return f
}

// EncryptVec implements Engine.
func (e *BigEngine) EncryptVec(values []float64) Ct {
	pt := e.Enc.Encode(values, e.MaxLevel(), e.Scale())
	return e.Ept.Encrypt(pt)
}

// DecryptVec implements Engine.
func (e *BigEngine) DecryptVec(ct Ct) []float64 {
	return e.Enc.Decode(e.Dec.DecryptNew(ct.(*ckksbig.Ciphertext)))
}

// Level implements Engine.
func (e *BigEngine) Level(ct Ct) int { return ct.(*ckksbig.Ciphertext).Level }

// ScaleOf implements Engine.
func (e *BigEngine) ScaleOf(ct Ct) float64 { return ct.(*ckksbig.Ciphertext).Scale }

// Add implements Engine.
func (e *BigEngine) Add(a, b Ct) Ct {
	return e.Ev.Add(a.(*ckksbig.Ciphertext), b.(*ckksbig.Ciphertext))
}

// AddPlainVec implements Engine.
func (e *BigEngine) AddPlainVec(ct Ct, v []float64) Ct {
	c := ct.(*ckksbig.Ciphertext)
	pt := e.Enc.Encode(v, c.Level, c.Scale)
	return e.Ev.AddPlain(c, pt)
}

// MulPlainVecAtScale implements Engine.
func (e *BigEngine) MulPlainVecAtScale(ct Ct, v []float64, scale float64) Ct {
	c := ct.(*ckksbig.Ciphertext)
	pt := e.Enc.Encode(v, c.Level, scale)
	return e.Ev.MulPlain(c, pt)
}

// MulRelin implements Engine.
func (e *BigEngine) MulRelin(a, b Ct) Ct {
	return e.Ev.Mul(a.(*ckksbig.Ciphertext), b.(*ckksbig.Ciphertext))
}

// MulInt implements Engine.
func (e *BigEngine) MulInt(ct Ct, n int64) Ct {
	return e.Ev.MulInt(ct.(*ckksbig.Ciphertext), n)
}

// Recombine implements ir.Recombiner with the same bit-identity
// contract as RNSEngine.Recombine.
func (e *BigEngine) Recombine(args []Ct, weights []int64) Ct {
	acc := args[0].(*ckksbig.Ciphertext) // weights[0] = 1
	for i := 1; i < len(args); i++ {
		c := args[i].(*ckksbig.Ciphertext)
		if weights[i] != 1 {
			c = e.Ev.MulInt(c, weights[i])
		}
		acc = e.Ev.Add(acc, c)
	}
	return acc
}

// Rescale implements Engine.
func (e *BigEngine) Rescale(ct Ct) Ct { return e.Ev.Rescale(ct.(*ckksbig.Ciphertext)) }

// DropLevel implements Engine.
func (e *BigEngine) DropLevel(ct Ct, n int) Ct {
	return e.Ev.DropLevel(ct.(*ckksbig.Ciphertext), n)
}

// Rotate implements Engine.
func (e *BigEngine) Rotate(ct Ct, k int) Ct {
	if k == 0 {
		return ct
	}
	return e.Ev.Rotate(ct.(*ckksbig.Ciphertext), k)
}

// RotateMany implements Engine using hoisted rotations.
func (e *BigEngine) RotateMany(ct Ct, ks []int) map[int]Ct {
	c := ct.(*ckksbig.Ciphertext)
	outs := e.Ev.RotateHoisted(c, nonZero(ks))
	m := make(map[int]Ct, len(ks))
	for _, k := range ks {
		if k == 0 {
			m[0] = ct
			continue
		}
		m[k] = outs[k]
	}
	return m
}

// EncodeVecsAt implements Engine: the ahead-of-time encoding pass.
func (e *BigEngine) EncodeVecsAt(specs []PlainSpec) []Pt {
	es := make([]ckksbig.EncodeSpec, len(specs))
	for i, s := range specs {
		es[i] = ckksbig.EncodeSpec{Values: s.Values, Level: s.Level, Scale: s.Scale}
	}
	pts := e.Enc.EncodeBatch(es, runtime.NumCPU())
	out := make([]Pt, len(pts))
	for i, pt := range pts {
		out[i] = pt
	}
	return out
}

// MulPlainPt implements Engine.
func (e *BigEngine) MulPlainPt(ct Ct, pt Pt) Ct {
	return e.Ev.MulPlain(ct.(*ckksbig.Ciphertext), pt.(*ckksbig.Plaintext))
}

// AddPlainPt implements Engine.
func (e *BigEngine) AddPlainPt(ct Ct, pt Pt) Ct {
	return e.Ev.AddPlain(ct.(*ckksbig.Ciphertext), pt.(*ckksbig.Plaintext))
}

var (
	_ Engine = (*RNSEngine)(nil)
	_ Engine = (*BigEngine)(nil)
)

func init() {
	// Guard against interface drift in one place.
	_ = fmt.Sprintf
}
