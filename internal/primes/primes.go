// Package primes generates NTT-friendly prime moduli and SEAL-style moduli
// chains for the RNS-CKKS scheme.
//
// A prime q is NTT-friendly for ring degree N when q ≡ 1 (mod 2N), which
// guarantees that Z_q contains a primitive 2N-th root of unity and therefore
// supports the negacyclic number-theoretic transform over Z_q[X]/(X^N+1).
//
// The chain builder mirrors the co-prime generation tool the paper uses from
// SEAL: "given a list of lengths of at most 60 bits, a set of co-primes of
// those lengths is generated" — extended here to wide (62–122 bit) lengths
// so that a fixed total modulus can be split into fewer, larger limbs for
// the Table IV/VI moduli-chain sweeps.
package primes

import (
	"fmt"
	"math/big"

	"cnnhe/internal/zq"
)

// millerRabinRounds is the number of Miller-Rabin rounds used for primality
// testing. math/big additionally runs a Baillie-PSW-style Lucas test, so
// false positives are cryptographically negligible.
const millerRabinRounds = 24

// IsPrime reports whether the word-sized v is prime.
func IsPrime(v uint64) bool {
	return new(big.Int).SetUint64(v).ProbablyPrime(millerRabinRounds)
}

// GenNTTPrimes returns `count` distinct word-sized primes of exactly bitLen
// bits with p ≡ 1 (mod 2N), searching downward from 2^bitLen. Primes listed
// in avoid are skipped. It returns an error when the range is exhausted.
func GenNTTPrimes(bitLen int, logN int, count int, avoid map[uint64]bool) ([]uint64, error) {
	if bitLen < 2 || bitLen > zq.MaxWordModulusBits {
		return nil, fmt.Errorf("primes: bit length %d outside word range [2,%d]", bitLen, zq.MaxWordModulusBits)
	}
	twoN := uint64(1) << uint(logN+1)
	if uint64(1)<<uint(bitLen) <= twoN {
		return nil, fmt.Errorf("primes: 2^%d too small for ring degree 2^%d", bitLen, logN)
	}
	upper := uint64(1) << uint(bitLen)
	lower := uint64(1) << uint(bitLen-1)
	// Largest candidate < upper with candidate ≡ 1 (mod 2N).
	cand := upper - twoN + 1
	var out []uint64
	for cand > lower {
		if !avoid[cand] && IsPrime(cand) {
			out = append(out, cand)
			if len(out) == count {
				return out, nil
			}
		}
		cand -= twoN
	}
	return nil, fmt.Errorf("primes: exhausted %d-bit range after finding %d/%d primes", bitLen, len(out), count)
}

// GenWideNTTPrime returns one wide prime (62–122 bits) of exactly bitLen
// bits with p ≡ 1 (mod 2N), skipping values in avoid (keyed by decimal
// string).
func GenWideNTTPrime(bitLen int, logN int, avoid map[string]bool) (*big.Int, error) {
	if bitLen <= zq.MaxWordModulusBits || bitLen > zq.MaxWideModulusBits {
		return nil, fmt.Errorf("primes: bit length %d outside wide range (%d,%d]", bitLen, zq.MaxWordModulusBits, zq.MaxWideModulusBits)
	}
	twoN := new(big.Int).Lsh(big.NewInt(1), uint(logN+1))
	upper := new(big.Int).Lsh(big.NewInt(1), uint(bitLen))
	lower := new(big.Int).Lsh(big.NewInt(1), uint(bitLen-1))
	cand := new(big.Int).Sub(upper, twoN)
	cand.Add(cand, big.NewInt(1))
	for cand.Cmp(lower) > 0 {
		if !avoid[cand.String()] && cand.ProbablyPrime(millerRabinRounds) {
			return new(big.Int).Set(cand), nil
		}
		cand.Sub(cand, twoN)
	}
	return nil, fmt.Errorf("primes: exhausted wide %d-bit range", bitLen)
}

// Chain is an ordered set of pairwise-distinct NTT-friendly primes: the
// ciphertext moduli q_0 … q_L followed (optionally) by special primes used
// only for key switching.
type Chain struct {
	// Moduli holds every prime in order, as big.Ints (word-sized primes
	// included, for uniform CRT handling).
	Moduli []*big.Int
	// BitSizes holds the requested bit length of each prime.
	BitSizes []int
	// SpecialCount is the number of trailing key-switching primes.
	SpecialCount int
}

// Len returns the number of ciphertext primes (excluding special primes).
func (c Chain) Len() int { return len(c.Moduli) - c.SpecialCount }

// Q returns the full ciphertext modulus ∏ q_i (special primes excluded).
func (c Chain) Q() *big.Int {
	q := big.NewInt(1)
	for i := 0; i < c.Len(); i++ {
		q.Mul(q, c.Moduli[i])
	}
	return q
}

// P returns the product of the special primes (1 when there are none).
func (c Chain) P() *big.Int {
	p := big.NewInt(1)
	for i := c.Len(); i < len(c.Moduli); i++ {
		p.Mul(p, c.Moduli[i])
	}
	return p
}

// LogQ returns the total bit length of the ciphertext modulus.
func (c Chain) LogQ() int { return c.Q().BitLen() }

// MaxWideBits reports the widest prime in the chain, used to decide the
// limb backend.
func (c Chain) MaxWideBits() int {
	m := 0
	for _, q := range c.Moduli {
		if b := q.BitLen(); b > m {
			m = b
		}
	}
	return m
}

// BuildChain generates a chain of distinct NTT-friendly primes with the
// given bit sizes (ciphertext primes) followed by specialBits-sized special
// primes (specialCount of them; pass 0,0 for none). Bit sizes may exceed the
// word bound, in which case wide primes are generated.
func BuildChain(logN int, bitSizes []int, specialBits, specialCount int) (Chain, error) {
	all := append(append([]int{}, bitSizes...), repeat(specialBits, specialCount)...)
	avoidWord := map[uint64]bool{}
	avoidWide := map[string]bool{}
	var moduli []*big.Int
	for _, b := range all {
		if b <= zq.MaxWordModulusBits {
			ps, err := GenNTTPrimes(b, logN, 1, avoidWord)
			if err != nil {
				return Chain{}, err
			}
			avoidWord[ps[0]] = true
			moduli = append(moduli, new(big.Int).SetUint64(ps[0]))
		} else {
			p, err := GenWideNTTPrime(b, logN, avoidWide)
			if err != nil {
				return Chain{}, err
			}
			avoidWide[p.String()] = true
			moduli = append(moduli, p)
		}
	}
	return Chain{Moduli: moduli, BitSizes: all, SpecialCount: specialCount}, nil
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// PaperBitSizes returns the ciphertext-prime bit sizes of the paper's
// Table II security settings following SEAL's convention, where the last
// listed prime is the key-switching ("special") prime: the ciphertext
// chain is [40, 26×11] (326 bits) and the trailing 40-bit prime of the
// paper's q = [40, 26, …, 26, 40] is the special prime, for
// log q·P = 366 in total across L = 13 primes.
func PaperBitSizes() []int {
	sizes := []int{40}
	for i := 0; i < 11; i++ {
		sizes = append(sizes, 26)
	}
	return sizes
}

// EqualSplit splits totalBits into k parts differing by at most one bit,
// largest parts first. It is the interpretation used for the Table IV/VI
// moduli-chain-length sweeps: the total ciphertext modulus is fixed and the
// number of co-prime limbs varies.
func EqualSplit(totalBits, k int) []int {
	base := totalBits / k
	rem := totalBits % k
	out := make([]int, k)
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
