package ckks

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"
)

// Key-material wire format, built on the same [tag][version][payload][crc32]
// framing as marshal.go. Composite objects (rotation-key sets, the bundle
// envelope) nest complete inner frames: the inner CRC localizes corruption
// to one key, the outer CRC covers the whole object including the nesting
// structure itself.

const (
	tagRelinKey  byte = 0x4B
	tagRotKeySet byte = 0x6E
	tagSecretKey byte = 0x92
	tagKeyBundle byte = 0xE1
)

// WriteRelinearizationKey serializes rlk.
func (ctx *Context) WriteRelinearizationKey(w io.Writer, rlk *RelinearizationKey) error {
	cw := newCRCWriter(w)
	if _, err := cw.Write([]byte{tagRelinKey, formatVersion}); err != nil {
		return err
	}
	if err := ctx.WriteSwitchingKey(cw, &rlk.SwitchingKey); err != nil {
		return err
	}
	return cw.writeSum()
}

// ReadRelinearizationKey deserializes a relinearization key.
func (ctx *Context) ReadRelinearizationKey(r io.Reader) (*RelinearizationKey, error) {
	cr := newCRCReader(r)
	if err := readHeader(cr, tagRelinKey, "relinearization key"); err != nil {
		return nil, err
	}
	swk, err := ctx.ReadSwitchingKey(cr)
	if err != nil {
		return nil, err
	}
	if err := cr.verifySum(); err != nil {
		return nil, err
	}
	return &RelinearizationKey{SwitchingKey: *swk}, nil
}

// WriteRotationKeySet serializes set. Keys are written in ascending
// Galois-element order, so equal sets serialize to identical bytes — the
// property the content fingerprint relies on.
func (ctx *Context) WriteRotationKeySet(w io.Writer, set *RotationKeySet) error {
	cw := newCRCWriter(w)
	if _, err := cw.Write([]byte{tagRotKeySet, formatVersion}); err != nil {
		return err
	}
	var n int
	if set != nil {
		n = len(set.Keys)
	}
	if err := writeUint64(cw, uint64(n)); err != nil {
		return err
	}
	els := make([]uint64, 0, n)
	if set != nil {
		for g := range set.Keys {
			els = append(els, g)
		}
	}
	sort.Slice(els, func(i, j int) bool { return els[i] < els[j] })
	for _, g := range els {
		if err := writeUint64(cw, g); err != nil {
			return err
		}
		if err := ctx.WriteSwitchingKey(cw, set.Keys[g]); err != nil {
			return err
		}
	}
	return cw.writeSum()
}

// ReadRotationKeySet deserializes a rotation-key set.
func (ctx *Context) ReadRotationKeySet(r io.Reader) (*RotationKeySet, error) {
	cr := newCRCReader(r)
	if err := readHeader(cr, tagRotKeySet, "rotation key set"); err != nil {
		return nil, err
	}
	n, err := readUint64(cr)
	if err != nil {
		return nil, err
	}
	// Galois elements are odd residues mod 2N: at most N distinct keys.
	if n > uint64(ctx.Params.N()) {
		return nil, fmt.Errorf("%w: rotation key count %d exceeds ring degree %d", ErrFormat, n, ctx.Params.N())
	}
	set := &RotationKeySet{Keys: make(map[uint64]*SwitchingKey, n)}
	twoN := uint64(2 * ctx.Params.N())
	for i := uint64(0); i < n; i++ {
		g, err := readUint64(cr)
		if err != nil {
			return nil, err
		}
		if g%2 == 0 || g >= twoN {
			return nil, fmt.Errorf("%w: Galois element %d not an odd residue mod %d", ErrFormat, g, twoN)
		}
		if _, dup := set.Keys[g]; dup {
			return nil, fmt.Errorf("%w: duplicate Galois element %d", ErrFormat, g)
		}
		swk, err := ctx.ReadSwitchingKey(cr)
		if err != nil {
			return nil, err
		}
		set.Keys[g] = swk
	}
	if err := cr.verifySum(); err != nil {
		return nil, err
	}
	return set, nil
}

// WriteSecretKey serializes sk. Only the centered ternary coefficient
// vector is written; the NTT-domain polynomial is a deterministic
// function of it and is rebuilt on read. Handle the output like the key
// itself — it IS the key.
func (ctx *Context) WriteSecretKey(w io.Writer, sk *SecretKey) error {
	cw := newCRCWriter(w)
	if _, err := cw.Write([]byte{tagSecretKey, formatVersion}); err != nil {
		return err
	}
	if err := writeUint64(cw, uint64(len(sk.Vec))); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range sk.Vec {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		if _, err := cw.Write(buf[:]); err != nil {
			return err
		}
	}
	return cw.writeSum()
}

// ReadSecretKey deserializes a secret key and rebuilds its NTT-domain
// polynomial on all QP limbs.
func (ctx *Context) ReadSecretKey(r io.Reader) (*SecretKey, error) {
	cr := newCRCReader(r)
	if err := readHeader(cr, tagSecretKey, "secret key"); err != nil {
		return nil, err
	}
	n, err := readUint64(cr)
	if err != nil {
		return nil, err
	}
	if n != uint64(ctx.Params.N()) {
		return nil, fmt.Errorf("%w: secret key length %d, ring degree %d", ErrFormat, n, ctx.Params.N())
	}
	vec := make([]int64, n)
	var buf [8]byte
	for i := range vec {
		if _, err := io.ReadFull(cr, buf[:]); err != nil {
			return nil, badFormat(err)
		}
		v := int64(binary.LittleEndian.Uint64(buf[:]))
		if v < -1 || v > 1 {
			return nil, fmt.Errorf("%w: secret key coefficient %d out of ternary range", ErrFormat, v)
		}
		vec[i] = v
	}
	if err := cr.verifySum(); err != nil {
		return nil, err
	}
	rg := ctx.R
	limbs := rg.Limbs(ctx.Params.MaxLevel(), true)
	s := rg.NewPoly(ctx.Params.MaxLevel())
	rg.SetCoeffsInt64(limbs, vec, s)
	rg.NTT(limbs, s)
	return &SecretKey{S: s, Vec: vec}, nil
}

// KeyBundle is the client-registered evaluation-key material: everything
// the server needs to run the lowered op graph on a client's ciphertexts
// and nothing that would let it decrypt them. ParamsDigest binds the
// bundle to the exact CKKS instantiation the keys were generated under.
type KeyBundle struct {
	ParamsDigest [32]byte
	PK           *PublicKey
	RLK          *RelinearizationKey
	RTK          *RotationKeySet
}

// WriteKeyBundle serializes b as the versioned bundle envelope.
func (ctx *Context) WriteKeyBundle(w io.Writer, b *KeyBundle) error {
	if b.PK == nil || b.RLK == nil || b.RTK == nil {
		return fmt.Errorf("ckks: key bundle requires public, relinearization and rotation keys")
	}
	cw := newCRCWriter(w)
	if _, err := cw.Write([]byte{tagKeyBundle, formatVersion}); err != nil {
		return err
	}
	if _, err := cw.Write(b.ParamsDigest[:]); err != nil {
		return err
	}
	if err := ctx.WritePublicKey(cw, b.PK); err != nil {
		return err
	}
	if err := ctx.WriteRelinearizationKey(cw, b.RLK); err != nil {
		return err
	}
	if err := ctx.WriteRotationKeySet(cw, b.RTK); err != nil {
		return err
	}
	return cw.writeSum()
}

// ReadKeyBundle deserializes a bundle envelope. The params digest is NOT
// checked here — the caller compares it against its own Parameters (a
// mismatch is a compatibility error, not a format error).
func (ctx *Context) ReadKeyBundle(r io.Reader) (*KeyBundle, error) {
	cr := newCRCReader(r)
	if err := readHeader(cr, tagKeyBundle, "key bundle"); err != nil {
		return nil, err
	}
	b := &KeyBundle{}
	if _, err := io.ReadFull(cr, b.ParamsDigest[:]); err != nil {
		return nil, badFormat(err)
	}
	var err error
	if b.PK, err = ctx.ReadPublicKey(cr); err != nil {
		return nil, err
	}
	if b.RLK, err = ctx.ReadRelinearizationKey(cr); err != nil {
		return nil, err
	}
	if b.RTK, err = ctx.ReadRotationKeySet(cr); err != nil {
		return nil, err
	}
	if err := cr.verifySum(); err != nil {
		return nil, err
	}
	return b, nil
}

// ParamsDigest returns a 32-byte digest over every field of the CKKS
// instantiation that affects ciphertext and key compatibility: ring
// degree, moduli chain (values and special count), scale, key/error
// distributions and the ring seed (which fixes the NTT roots).
func (p Parameters) ParamsDigest() [32]byte {
	h := sha256.New()
	h.Write([]byte("cnnhe-ckks-params-v1"))
	u := func(v uint64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u(uint64(p.LogN))
	u(math.Float64bits(p.Scale))
	u(uint64(p.H))
	u(math.Float64bits(p.Sigma))
	u(uint64(p.RingSeed))
	u(uint64(p.Chain.SpecialCount))
	u(uint64(len(p.Chain.Moduli)))
	for _, q := range p.Chain.Moduli {
		b := q.Bytes()
		u(uint64(len(b)))
		h.Write(b)
	}
	var d [32]byte
	h.Sum(d[:0])
	return d
}

// Fingerprint returns the hex form of ParamsDigest, the value exchanged
// over the wire (/v1/info) and embedded in registered key bundles.
func (p Parameters) Fingerprint() string {
	d := p.ParamsDigest()
	return hex.EncodeToString(d[:])
}

// BundleFingerprint is the content address of a serialized key bundle:
// hex(SHA-256(bytes)). Client and server compute it independently from
// the same bytes, so registration needs no server-assigned identifier.
func BundleFingerprint(data []byte) string {
	d := sha256.Sum256(data)
	return hex.EncodeToString(d[:])
}

// Wire-size accounting. Exact byte counts of the framed formats above,
// used to size HTTP body limits from the actual payloads instead of a
// guessed constant.

// polyWireSize is the writePoly footprint of a polynomial with limbCount
// limbs of N coefficients each.
func (ctx *Context) polyWireSize(limbCount int) int {
	return 8 + limbCount*(16+8*ctx.Params.N())
}

// CiphertextWireSize returns the exact serialized size of a ciphertext
// at the given level.
func (ctx *Context) CiphertextWireSize(level int) int {
	return 2 + 16 + 2*ctx.polyWireSize(level+1) + 4
}

// switchingKeyWireSize is the exact serialized size of one switching key
// (all digits, all QP limbs).
func (ctx *Context) switchingKeyWireSize() int {
	digits := ctx.Params.MaxLevel() + 1
	allLimbs := digits + ctx.Params.Chain.SpecialCount
	return 2 + 8 + digits*2*ctx.polyWireSize(allLimbs) + 4
}

// PublicKeyWireSize returns the exact serialized size of a public key.
func (ctx *Context) PublicKeyWireSize() int {
	allLimbs := ctx.Params.MaxLevel() + 1 + ctx.Params.Chain.SpecialCount
	return 2 + 2*ctx.polyWireSize(allLimbs) + 4
}

// KeyBundleWireSize returns the exact serialized size of a bundle
// carrying `rotations` rotation keys.
func (ctx *Context) KeyBundleWireSize(rotations int) int {
	swk := ctx.switchingKeyWireSize()
	rlk := 2 + swk + 4
	rtk := 2 + 8 + rotations*(8+swk) + 4
	return 2 + 32 + ctx.PublicKeyWireSize() + rlk + rtk + 4
}
