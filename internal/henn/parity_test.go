package henn

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/nn"
)

// The executor parity suite pins the tentpole guarantee: the lowered
// graph, replayed by the executor with ahead-of-time encoded
// plaintexts, produces BIT-IDENTICAL logits to the legacy eager
// interpreter, with the same Report stage-name sequence. Encryption is
// randomized, so each side runs on its own identically-seeded engine:
// key generation and the single encrypt prologue then draw the same
// PRNG sequence, and every evaluation op downstream is deterministic.
//
// The graph optimizer is gated on the same oracle in three modes:
//   - -opt=off: the canonical lowering executes unchanged → bit-identical
//   - -opt=exact: only bit-exact rewrites (CSE, DCE, replan, fuse,
//     zero-fold, droplevel-sink) → still bit-identical
//   - -opt=on (default): adds rescale-sinking and plaintext chain
//     folding, which re-round → logits within tolerance, argmax unchanged

type engineMaker func(t *testing.T) Engine

func rnsMaker(t *testing.T, plan *Plan, logN int, bits []int, seed int64) engineMaker {
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckDepth(params.MaxLevel()); err != nil {
		t.Fatal(err)
	}
	return func(t *testing.T) Engine {
		e, err := NewRNSEngine(params, plan.Rotations(), seed)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
}

func bigMaker(t *testing.T, plan *Plan, logN int, bits []int, seed int64) engineMaker {
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := ckksbig.FromRNSParameters(params)
	if err != nil {
		t.Fatal(err)
	}
	return func(t *testing.T) Engine {
		e, err := NewBigEngine(bp, plan.Rotations(), seed)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
}

func stageNames(rep *Report) []string {
	out := make([]string, len(rep.Stages))
	for i, s := range rep.Stages {
		out[i] = s.Stage
	}
	return out
}

func assertSameRun(t *testing.T, label string, lgA, lgB Logits, repA, repB *Report) {
	t.Helper()
	if len(lgA) != len(lgB) {
		t.Fatalf("%s: %d vs %d logits", label, len(lgA), len(lgB))
	}
	for i := range lgA {
		if lgA[i] != lgB[i] {
			t.Fatalf("%s: logit %d differs: %.17g vs %.17g (Δ=%g)",
				label, i, lgA[i], lgB[i], lgA[i]-lgB[i])
		}
	}
	a, b := stageNames(repA), stageNames(repB)
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d report rows (%v vs %v)", label, len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: report row %d named %q vs %q", label, i, a[i], b[i])
		}
	}
	for i := range repA.Stages {
		if repA.Stages[i].Level != repB.Stages[i].Level {
			t.Fatalf("%s: stage %q level %d vs %d", label, a[i], repA.Stages[i].Level, repB.Stages[i].Level)
		}
		if repA.Stages[i].Scale != repB.Stages[i].Scale {
			t.Fatalf("%s: stage %q scale %g vs %g", label, a[i], repA.Stages[i].Scale, repB.Stages[i].Scale)
		}
	}
}

// assertCloseRun is the tolerance gate for the full optimizer pipeline:
// same stage rows and levels, logits within an absolute tolerance, and
// an unchanged argmax.
func assertCloseRun(t *testing.T, label string, lgA, lgB Logits, repA, repB *Report) {
	t.Helper()
	const tol = 1e-3
	if len(lgA) != len(lgB) {
		t.Fatalf("%s: %d vs %d logits", label, len(lgA), len(lgB))
	}
	amA, amB := 0, 0
	for i := range lgA {
		if d := math.Abs(lgA[i] - lgB[i]); d > tol {
			t.Fatalf("%s: logit %d differs: %.17g vs %.17g (Δ=%g > %g)",
				label, i, lgA[i], lgB[i], lgA[i]-lgB[i], tol)
		}
		if lgA[i] > lgA[amA] {
			amA = i
		}
		if lgB[i] > lgB[amB] {
			amB = i
		}
	}
	if amA != amB {
		t.Fatalf("%s: argmax changed: %d vs %d", label, amA, amB)
	}
	a, b := stageNames(repA), stageNames(repB)
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d report rows (%v vs %v)", label, len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: report row %d named %q vs %q", label, i, a[i], b[i])
		}
		if repA.Stages[i].Level != repB.Stages[i].Level {
			t.Fatalf("%s: stage %q level %d vs %d", label, a[i], repA.Stages[i].Level, repB.Stages[i].Level)
		}
		sa, sb := repA.Stages[i].Scale, repB.Stages[i].Scale
		if math.Abs(sa-sb) > math.Max(sa, sb)*1e-6 {
			t.Fatalf("%s: stage %q scale %g vs %g", label, a[i], sa, sb)
		}
	}
}

// parityMode is one optimizer configuration gated by the oracle.
type parityMode struct {
	name string
	opts *opt.Options
	// bitExact selects assertSameRun; otherwise assertCloseRun.
	bitExact bool
}

func parityModes() []parityMode {
	return []parityMode{
		{"opt=off", opt.Disabled(), true},
		{"opt=exact", &opt.Options{Exact: true}, true},
		{"opt=on", nil, false},
	}
}

// checkPlanParity compares InferCtx (executor) to InferCtxLegacy on
// identically-seeded engines, across all optimizer modes.
func checkPlanParity(t *testing.T, plan *Plan, mk engineMaker, image []float64) {
	ctx := context.Background()
	lgL, repL, errL := plan.InferCtxLegacy(ctx, mk(t), image)
	if errL != nil {
		t.Fatal(errL)
	}
	defer func() { plan.Opt = nil }()
	for _, mode := range parityModes() {
		plan.Opt = mode.opts
		lgX, repX, errX := plan.InferCtx(ctx, mk(t), image)
		if errX != nil {
			t.Fatalf("plan/%s: %v", mode.name, errX)
		}
		if mode.bitExact {
			assertSameRun(t, "plan/"+mode.name, lgL, lgX, repL, repX)
		} else {
			assertCloseRun(t, "plan/"+mode.name, lgL, lgX, repL, repX)
		}
	}
}

// checkRNSParity compares the decomposed pipeline across legacy,
// sequential executor, and parallel executor runs, in every optimizer
// mode. The RNS graph is where the tolerance-class rescale sink fires
// (on the recompose reduction), so the opt=on legs are the ones
// exercising assertCloseRun.
func checkRNSParity(t *testing.T, base *Plan, k int, mk engineMaker, image []float64) {
	ctx := context.Background()
	mkPlan := func(parallel bool, o *opt.Options) *RNSPlan {
		rp, err := NewRNSPlan(base, k, parallel)
		if err != nil {
			t.Fatal(err)
		}
		rp.Opt = o
		return rp
	}
	lgL, repL, errL := mkPlan(false, opt.Disabled()).InferCtxLegacy(ctx, mk(t), image)
	if errL != nil {
		t.Fatal(errL)
	}
	for _, mode := range parityModes() {
		check := assertCloseRun
		if mode.bitExact {
			check = assertSameRun
		}
		lgS, repS, errS := mkPlan(false, mode.opts).InferCtx(ctx, mk(t), image)
		if errS != nil {
			t.Fatalf("rns sequential/%s: %v", mode.name, errS)
		}
		check(t, "rns sequential/"+mode.name, lgL, lgS, repL, repS)
		lgP, repP, errP := mkPlan(true, mode.opts).InferCtx(ctx, mk(t), image)
		if errP != nil {
			t.Fatalf("rns parallel/%s: %v", mode.name, errP)
		}
		check(t, "rns parallel/"+mode.name, lgL, lgP, repL, repP)
	}
}

func TestExecutorParityTiny(t *testing.T) {
	plan, err := Compile(tinyModel(1), 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	img := testImage(rng, plan.InputDim)
	bits := []int{40, 30, 30, 30, 30}
	for _, tc := range []struct {
		name string
		mk   engineMaker
	}{
		{"rns", rnsMaker(t, plan, 10, bits, 601)},
		{"big", bigMaker(t, plan, 10, bits, 602)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkPlanParity(t, plan, tc.mk, img)
			checkRNSParity(t, plan, 3, tc.mk, img)
		})
	}
}

// TestExecutorParityBatch pins InferBatch against per-image inference:
// batch encryption happens serially in image order, so an
// identically-seeded engine yields bit-identical logits.
func TestExecutorParityBatch(t *testing.T) {
	plan, err := Compile(tinyModel(1), 512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	images := [][]float64{
		testImage(rng, plan.InputDim),
		testImage(rng, plan.InputDim),
		testImage(rng, plan.InputDim),
	}
	mk := rnsMaker(t, plan, 10, []int{40, 30, 30, 30, 30}, 603)
	ctx := context.Background()
	eSeq := mk(t)
	var want []Logits
	for _, img := range images {
		lg, _, err := plan.InferCtx(ctx, eSeq, img)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, lg)
	}
	got, err := plan.InferBatch(ctx, mk(t), images, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		assertSameRun(t, "batch", want[i], got[i], &Report{}, &Report{})
	}
}

// paperModel compiles an untrained paper architecture with SLAF
// activations — weights are irrelevant to parity, only the op structure
// matters.
func paperModel(t *testing.T, arch string, slots int) *Plan {
	rng := rand.New(rand.NewSource(7))
	var m *nn.Model
	switch arch {
	case "cnn1":
		m = nn.NewCNN1(rng)
	case "cnn2":
		m = nn.NewCNN2(rng)
	}
	hm := m.ReplaceReLUWithSLAF(3, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	plan, err := Compile(hm, slots)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestExecutorParityCNN1 covers the paper's CNN1 shape at full MNIST
// dimensions on the RNS backend (the big backend is covered by the tiny
// fixture above; CNN-scale multiprecision runs belong to the benchmark
// suite, not the unit tests).
func TestExecutorParityCNN1(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN-scale parity skipped in short mode")
	}
	plan := paperModel(t, "cnn1", 1024)
	rng := rand.New(rand.NewSource(12))
	img := testImage(rng, plan.InputDim)
	bits := make([]int, plan.Depth+2)
	bits[0] = 40
	for i := 1; i < len(bits); i++ {
		bits[i] = 30
	}
	mk := rnsMaker(t, plan, 11, bits, 604)
	checkPlanParity(t, plan, mk, img)
	checkRNSParity(t, plan, 3, mk, img)
}

// TestExecutorParityCNN2 covers the deeper CNN2 shape at 2048 slots.
func TestExecutorParityCNN2(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN-scale parity skipped in short mode")
	}
	plan := paperModel(t, "cnn2", 2048)
	rng := rand.New(rand.NewSource(13))
	img := testImage(rng, plan.InputDim)
	bits := make([]int, plan.Depth+2)
	bits[0] = 40
	for i := 1; i < len(bits); i++ {
		bits[i] = 30
	}
	mk := rnsMaker(t, plan, 12, bits, 605)
	checkPlanParity(t, plan, mk, img)
}

func TestPowOverflowGuard(t *testing.T) {
	cases := []struct {
		b    int64
		k    int
		want int64
	}{
		{2, 0, 1},
		{2, 8, 256},
		{3, 5, 243},
		{2, 62, 1 << 62},
		{2, 63, math.MaxInt64},  // would overflow: saturates
		{3, 40, math.MaxInt64},  // 3^40 > 2^63
		{10, 19, math.MaxInt64}, // 10^19 > 2^63
		{256, 4, 1 << 32},       // the old early return capped here
		{256, 5, 1 << 40},       // …and returned 2^32 instead of this
		{1, 100, 1},
		{0, 3, 0},
	}
	for _, tc := range cases {
		if got := pow(tc.b, tc.k); got != tc.want {
			t.Errorf("pow(%d, %d) = %d, want %d", tc.b, tc.k, got, tc.want)
		}
	}
}
