package ckks

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestHomomorphismPropertyQuick checks with testing/quick that decryption
// is a ring homomorphism on random slot vectors:
// Dec(Enc(a) ⊕ Enc(b)) ≈ a + b and Dec(Enc(a) ⊗ Enc(b)) ≈ a ⊙ b.
func TestHomomorphismPropertyQuick(t *testing.T) {
	k := tiny(t)
	L := k.ctx.Params.MaxLevel()
	scale := k.ctx.Params.Scale
	n := k.ctx.Params.Slots()

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randVec(rng, n, 2)
		b := randVec(rng, n, 2)
		cta := k.ept.Encrypt(k.enc.Encode(a, L, scale))
		ctb := k.ept.Encrypt(k.enc.Encode(b, L, scale))
		sum := k.enc.Decode(k.dec.DecryptNew(k.ev.Add(cta, ctb)))
		prod := k.enc.Decode(k.dec.DecryptNew(k.ev.Rescale(k.ev.Mul(cta, ctb))))
		for i := 0; i < n; i++ {
			if math.Abs(sum[i]-(a[i]+b[i])) > 1e-3 {
				return false
			}
			if math.Abs(prod[i]-a[i]*b[i]) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestLinearityPropertyQuick: Dec(c·Enc(a) + Enc(b)) ≈ c·a + b for random
// scalars and vectors.
func TestLinearityPropertyQuick(t *testing.T) {
	k := tiny(t)
	L := k.ctx.Params.MaxLevel()
	scale := k.ctx.Params.Scale
	n := k.ctx.Params.Slots()

	prop := func(seed int64, rawC float64) bool {
		c := math.Mod(rawC, 4)
		if math.IsNaN(c) || math.IsInf(c, 0) {
			c = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		a := randVec(rng, n, 2)
		b := randVec(rng, n, 2)
		cta := k.ept.Encrypt(k.enc.Encode(a, L, scale))
		ctb := k.ept.Encrypt(k.enc.Encode(b, L, scale))
		scaled := k.ev.Rescale(k.ev.MulConst(cta, c, 0))
		got := k.enc.Decode(k.dec.DecryptNew(k.ev.Add(scaled, k.ev.DropLevel(ctb, 1))))
		for i := 0; i < n; i++ {
			if math.Abs(got[i]-(c*a[i]+b[i])) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestRotationCompositionProperty: Rot(Rot(x, a), b) == Rot(x, a+b).
func TestRotationCompositionProperty(t *testing.T) {
	p, err := TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	k := newTestKit(t, p, []int{2, 3, 5}, false)
	rng := rand.New(rand.NewSource(101))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	ct := k.ept.Encrypt(k.enc.Encode(a, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))

	r23 := k.ev.Rotate(k.ev.Rotate(ct, 2), 3)
	r5 := k.ev.Rotate(ct, 5)
	g1 := k.enc.Decode(k.dec.DecryptNew(r23))
	g2 := k.enc.Decode(k.dec.DecryptNew(r5))
	for i := 0; i < n; i++ {
		if math.Abs(g1[i]-g2[i]) > 1e-3 {
			t.Fatalf("rotation composition broken at slot %d", i)
		}
	}
}

func TestEvaluatorPanics(t *testing.T) {
	k := tiny(t)
	L := k.ctx.Params.MaxLevel()
	ct := k.ept.Encrypt(k.enc.Encode([]float64{1}, L, k.ctx.Params.Scale))

	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	noKeys := NewEvaluator(k.ctx, nil, nil)
	expectPanic("Mul without rlk", func() { noKeys.Mul(ct, ct) })
	expectPanic("Rotate without keys", func() { noKeys.Rotate(ct, 1) })
	expectPanic("missing rotation key", func() { k.ev.Rotate(ct, 3) })
	expectPanic("rescale at level 0", func() {
		low := k.ev.DropLevel(ct, L)
		k.ev.Rescale(low)
	})
	expectPanic("negative DropLevel", func() { k.ev.DropLevel(ct, -1) })
	expectPanic("DropLevel past 0", func() { k.ev.DropLevel(ct, L+1) })
}

func TestEncryptorRequiresNTTPlaintext(t *testing.T) {
	k := tiny(t)
	pt := k.enc.Encode([]float64{1}, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale)
	pt.IsNTT = false
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-NTT plaintext")
		}
	}()
	k.ept.Encrypt(pt)
}

func TestComplexEncodeDecode(t *testing.T) {
	k := tiny(t)
	rng := rand.New(rand.NewSource(55))
	n := k.ctx.Params.Slots()
	vals := make([]complex128, n)
	for i := range vals {
		vals[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	pt := k.enc.EncodeComplex(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale)
	ct := k.ept.Encrypt(pt)
	got := k.enc.DecodeComplex(k.dec.DecryptNew(ct))
	for i := 0; i < n; i++ {
		if d := got[i] - vals[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-8 {
			t.Fatalf("complex roundtrip error at %d", i)
		}
	}
}

func TestSweepParametersSpecialSizing(t *testing.T) {
	// Word-size splits keep one special prime; wide splits take two.
	pw, err := SweepParameters(10, 366, 8, math.Exp2(45))
	if err != nil {
		t.Fatal(err)
	}
	if pw.Chain.SpecialCount != 1 {
		t.Fatalf("word split special count %d", pw.Chain.SpecialCount)
	}
	pwide, err := SweepParameters(10, 366, 3, math.Exp2(40))
	if err != nil {
		t.Fatal(err)
	}
	if pwide.Chain.SpecialCount != 2 {
		t.Fatalf("wide split special count %d", pwide.Chain.SpecialCount)
	}
	if pwide.Chain.P().BitLen() < pwide.Chain.MaxWideBits() {
		t.Fatal("special modulus must dominate the largest prime")
	}
}

func TestCiphertextStringer(t *testing.T) {
	k := tiny(t)
	ct := k.ept.Encrypt(k.enc.Encode([]float64{1}, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	s := ct.String()
	if s == "" {
		t.Fatal("empty stringer")
	}
}
