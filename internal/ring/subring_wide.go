package ring

import (
	"math/big"
	"math/rand"
	"sync"
	"sync/atomic"

	"cnnhe/internal/zq"
)

// wideRing is the two-word limb backend for primes of 62–122 bits. It
// exists so that a fixed total ciphertext modulus can be split into fewer,
// larger limbs (the paper's Table IV/VI moduli-chain sweeps); its heavier
// multiprecision-style arithmetic is exactly the cost RNS amortizes away,
// so no lazy-reduction tricks are applied here. Element-wise methods derive
// their iteration count from the output slice, so the ring layer can hand
// them coefficient-aligned sub-slabs.
type wideRing struct {
	n    int
	logN int
	mod  zq.WideModulus

	psiRev       []zq.Wide
	psiRevShoup  []zq.Wide
	ipsiRev      []zq.Wide
	ipsiRevShoup []zq.Wide
	nInv         zq.Wide
	nInvShoup    zq.Wide
	maskHi       uint64 // rejection mask for the high word when sampling

	// scalars memoizes the Shoup constant per reduced scalar (keyed by the
	// comparable zq.Wide value), mirroring the word backend's cache.
	scalars   atomic.Value // map[zq.Wide]zq.Wide: reduced scalar → Shoup constant
	scalarsMu sync.Mutex
}

func newWideRing(n int, q *big.Int, rng *rand.Rand) *wideRing {
	mod := zq.NewWideModulus(q)
	twoN := uint64(2 * n)
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	if new(big.Int).Mod(qm1, new(big.Int).SetUint64(twoN)).Sign() != 0 {
		panic("ring: wide modulus not NTT-friendly for this degree")
	}
	logN := log2(n)
	psi := mod.PrimitiveNthRoot(twoN, rng)
	ipsi := mod.Inv(psi)
	r := &wideRing{
		n:            n,
		logN:         logN,
		mod:          mod,
		psiRev:       make([]zq.Wide, n),
		psiRevShoup:  make([]zq.Wide, n),
		ipsiRev:      make([]zq.Wide, n),
		ipsiRevShoup: make([]zq.Wide, n),
	}
	hiBits := mod.Bits - 64
	if hiBits >= 64 {
		r.maskHi = ^uint64(0)
	} else {
		r.maskHi = (uint64(1) << uint(hiBits)) - 1
	}
	pw, ipw := zq.Wide{Lo: 1}, zq.Wide{Lo: 1}
	for i := 0; i < n; i++ {
		j := bitrev(i, logN)
		r.psiRev[j] = pw
		r.psiRevShoup[j] = mod.ShoupPrecomp(pw)
		r.ipsiRev[j] = ipw
		r.ipsiRevShoup[j] = mod.ShoupPrecomp(ipw)
		pw = mod.Mul(pw, psi)
		ipw = mod.Mul(ipw, ipsi)
	}
	r.nInv = mod.Inv(zq.Wide{Lo: uint64(n)})
	r.nInvShoup = mod.ShoupPrecomp(r.nInv)
	return r
}

func (r *wideRing) N() int            { return r.n }
func (r *wideRing) Width() int        { return 2 }
func (r *wideRing) Modulus() *big.Int { return r.mod.Modulus() }
func (r *wideRing) BitLen() int       { return r.mod.Bits }

func (r *wideRing) get(a []uint64, i int) zq.Wide    { return zq.Wide{Lo: a[2*i], Hi: a[2*i+1]} }
func (r *wideRing) put(a []uint64, i int, v zq.Wide) { a[2*i], a[2*i+1] = v.Lo, v.Hi }

func (r *wideRing) NTT(a []uint64) {
	t := r.n
	for m := 1; m < r.n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := r.psiRev[m+i]
			ws := r.psiRevShoup[m+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := r.get(a, j)
				v := r.mod.ShoupMul(r.get(a, j+t), w, ws)
				r.put(a, j, r.mod.Add(u, v))
				r.put(a, j+t, r.mod.Sub(u, v))
			}
		}
	}
}

func (r *wideRing) INTT(a []uint64) {
	t := 1
	for m := r.n >> 1; m >= 1; m >>= 1 {
		j1 := 0
		for i := 0; i < m; i++ {
			w := r.ipsiRev[m+i]
			ws := r.ipsiRevShoup[m+i]
			for j := j1; j < j1+t; j++ {
				u := r.get(a, j)
				v := r.get(a, j+t)
				r.put(a, j, r.mod.Add(u, v))
				r.put(a, j+t, r.mod.ShoupMul(r.mod.Sub(u, v), w, ws))
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := 0; i < r.n; i++ {
		r.put(a, i, r.mod.ShoupMul(r.get(a, i), r.nInv, r.nInvShoup))
	}
}

func (r *wideRing) Add(a, b, out []uint64) {
	for i := 0; i < len(out)/2; i++ {
		r.put(out, i, r.mod.Add(r.get(a, i), r.get(b, i)))
	}
}

func (r *wideRing) Sub(a, b, out []uint64) {
	for i := 0; i < len(out)/2; i++ {
		r.put(out, i, r.mod.Sub(r.get(a, i), r.get(b, i)))
	}
}

func (r *wideRing) Neg(a, out []uint64) {
	for i := 0; i < len(out)/2; i++ {
		r.put(out, i, r.mod.Neg(r.get(a, i)))
	}
}

func (r *wideRing) MulCoeffs(a, b, out []uint64) {
	for i := 0; i < len(out)/2; i++ {
		r.put(out, i, r.mod.Mul(r.get(a, i), r.get(b, i)))
	}
}

func (r *wideRing) MulCoeffsThenAdd(a, b, out []uint64) {
	for i := 0; i < len(out)/2; i++ {
		p := r.mod.Mul(r.get(a, i), r.get(b, i))
		r.put(out, i, r.mod.Add(r.get(out, i), p))
	}
}

// scalarWide reduces s into [0, q) without allocating when s is already a
// non-negative ≤128-bit value (the invQ and encoder constants always are).
func (r *wideRing) scalarWide(s *big.Int) zq.Wide {
	if s.Sign() >= 0 {
		if w := s.Bits(); len(w) <= 2 {
			var v zq.Wide
			if len(w) > 0 {
				v.Lo = uint64(w[0])
			}
			if len(w) > 1 {
				v.Hi = uint64(w[1])
			}
			if v.Less(r.mod.Q) {
				return v
			}
			return r.mod.Reduce(v)
		}
	}
	return zq.WideFromBig(new(big.Int).Mod(s, r.mod.Modulus()))
}

// shoupFor returns the memoized Shoup constant for the reduced scalar sv.
func (r *wideRing) shoupFor(sv zq.Wide) zq.Wide {
	cache, _ := r.scalars.Load().(map[zq.Wide]zq.Wide)
	if ss, ok := cache[sv]; ok {
		return ss
	}
	ss := r.mod.ShoupPrecomp(sv)
	r.scalarsMu.Lock()
	cur, _ := r.scalars.Load().(map[zq.Wide]zq.Wide)
	if _, ok := cur[sv]; !ok && len(cur) < maxScalarCache {
		next := make(map[zq.Wide]zq.Wide, len(cur)+1)
		for k, v := range cur {
			next[k] = v
		}
		next[sv] = ss
		r.scalars.Store(next)
	}
	r.scalarsMu.Unlock()
	return ss
}

func (r *wideRing) MulScalar(a []uint64, s *big.Int, out []uint64) {
	sv := r.scalarWide(s)
	ss := r.shoupFor(sv)
	for i := 0; i < len(out)/2; i++ {
		r.put(out, i, r.mod.ShoupMul(r.get(a, i), sv, ss))
	}
}

func (r *wideRing) SubScalarThenMulScalar(a []uint64, c, s *big.Int, out []uint64) {
	cv := r.scalarWide(c)
	sv := r.scalarWide(s)
	ss := r.shoupFor(sv)
	for i := 0; i < len(out)/2; i++ {
		r.put(out, i, r.mod.ShoupMul(r.mod.Sub(r.get(a, i), cv), sv, ss))
	}
}

func (r *wideRing) Automorphism(a []uint64, galEl uint64, out []uint64) {
	n := uint64(r.n)
	mask := 2*n - 1
	for i := uint64(0); i < n; i++ {
		j := (i * galEl) & mask
		v := r.get(a, int(i))
		if j < n {
			r.put(out, int(j), v)
		} else {
			r.put(out, int(j-n), r.mod.Neg(v))
		}
	}
}

func (r *wideRing) ReduceFrom(src SubRing, a, out []uint64) {
	switch s := src.(type) {
	case *wordRing:
		// Any word value is below a wide modulus (> 2^61).
		for i := 0; i < len(a); i++ {
			out[2*i], out[2*i+1] = a[i], 0
		}
	case *wideRing:
		if s.mod.Q == r.mod.Q {
			copy(out, a)
			return
		}
		for i := 0; i < len(out)/2; i++ {
			r.put(out, i, r.mod.Reduce(s.get(a, i)))
		}
	default:
		panic("ring: unknown source subring")
	}
}

func (r *wideRing) SetCoeffBig(a []uint64, j int, v *big.Int) {
	r.put(a, j, zq.WideFromBig(v))
}

func (r *wideRing) CoeffBig(a []uint64, j int, out *big.Int) {
	out.Set(r.get(a, j).Big())
}

func (r *wideRing) SetCoeffInt64(a []uint64, j int, v int64) {
	if v >= 0 {
		r.put(a, j, zq.Wide{Lo: uint64(v)})
	} else {
		r.put(a, j, r.mod.Neg(zq.Wide{Lo: uint64(-v)}))
	}
}

func (r *wideRing) SetCoeffsInt64(a []uint64, vec []int64) {
	for j, v := range vec {
		if v >= 0 {
			a[2*j], a[2*j+1] = uint64(v), 0
		} else {
			w := r.mod.Neg(zq.Wide{Lo: uint64(-v)})
			a[2*j], a[2*j+1] = w.Lo, w.Hi
		}
	}
}

func (r *wideRing) SampleUniform(rng *rand.Rand, a []uint64) {
	for i := 0; i < r.n; i++ {
		for {
			v := zq.Wide{Lo: rng.Uint64(), Hi: rng.Uint64() & r.maskHi}
			if v.Less(r.mod.Q) {
				r.put(a, i, v)
				break
			}
		}
	}
}
