package embed

import (
	"math"
	"testing"
)

// TestPaperSectionIIICEncodingError reproduces the worked example of the
// paper's Section III.C: with M = 8 (ring degree N = 4) and Δ = 64, the
// vector z = (0.1, −0.01) encodes to an integer polynomial whose decoding
// turns −0.01 into ≈ +0.0027 — the near-zero slot loses all information
// (value and sign) to the rounding error, while the larger slot survives.
func TestPaperSectionIIICEncodingError(t *testing.T) {
	const n = 4
	const delta = 64.0
	e := New(n)
	z := []float64{0.1, -0.01}

	coeffs := e.EncodeReal(z)
	// Round Δ·τ^{-1}(z) to integers — the CKKS encoding step.
	rounded := make([]float64, n)
	for i, c := range coeffs {
		rounded[i] = math.Round(c * delta)
	}
	// Integer coefficients must be small, as in the paper's m(X)=−2X³+2X+3.
	for i, c := range rounded {
		if math.Abs(c) > 4 {
			t.Fatalf("coefficient %d unexpectedly large: %v", i, c)
		}
	}
	for i := range rounded {
		rounded[i] /= delta
	}
	got := e.DecodeReal(rounded)

	// Slot 0 (0.1) survives with moderate error.
	if math.Abs(got[0]-0.1) > 0.02 {
		t.Fatalf("slot 0 error too large: got %v", got[0])
	}
	// Slot 1 (−0.01): the paper observes ≈ +0.00268 — the decoded value
	// does not carry the original sign or magnitude.
	if math.Abs(got[1]-(-0.01)) < math.Abs(-0.01) {
		t.Fatalf("expected the rounding error to dominate the near-zero slot, got %v", got[1])
	}
	t.Logf("paper III.C reproduction: z=(0.1, -0.01) decoded as (%.5f, %.5f) — "+
		"paper reports ≈(0.09107, 0.00268)", got[0], got[1])

	// Increasing Δ shrinks the absolute error, as the paper notes.
	const delta2 = 1 << 20
	rounded2 := make([]float64, n)
	for i, c := range coeffs {
		rounded2[i] = math.Round(c*delta2) / delta2
	}
	got2 := e.DecodeReal(rounded2)
	if math.Abs(got2[1]-(-0.01)) > 1e-4 {
		t.Fatalf("larger Δ should recover the value: got %v", got2[1])
	}
}
