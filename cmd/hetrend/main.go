// Command hetrend is the benchmark regression gate: it loads every
// BENCH_*.json report in a directory, prints a per-(model, backend,
// logN, chain, ring-mode) latency trend table, and exits 1 when the
// newest run is more than -threshold slower than the best prior run of
// the same configuration. Runs at different ring degrees or chain
// lengths, or with the limb-parallel ring kernels toggled (the
// schema-v5 ring_parallel envelope field), are separate series — a
// parameter change is not a regression.
//
// Usage:
//
//	hetrend                        # gate the reports in the CWD
//	hetrend -dir results -out trend.md
//	hetrend -threshold 0.10        # stricter: fail on +10%
//	hetrend -check=false           # report only, never fail
//
// Exit codes: 0 trend OK (or nothing to compare), 1 regression found,
// 2 reports unreadable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cnnhe/internal/bench"
)

func main() {
	var (
		dir       = flag.String("dir", ".", "directory holding BENCH_*.json reports")
		outPath   = flag.String("out", "", "also write the trend table to this file")
		threshold = flag.Float64("threshold", bench.DefaultRegressionThreshold,
			"fractional mean-latency increase over the best prior run that fails the gate")
		check = flag.Bool("check", true, "exit 1 on regression (false = report only)")
	)
	flag.Parse()

	trend, err := bench.LoadTrend(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetrend:", err)
		os.Exit(2)
	}
	if trend.Files == 0 {
		fmt.Printf("hetrend: no BENCH_*.json reports under %s; nothing to gate\n", *dir)
		return
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hetrend:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	if err := trend.Write(w); err != nil {
		fmt.Fprintln(os.Stderr, "hetrend:", err)
		os.Exit(2)
	}

	regs := trend.Regressions(*threshold)
	if len(regs) == 0 {
		fmt.Fprintf(w, "\nno regression: newest run within %.0f%% of best prior run for every configuration\n",
			100**threshold)
		return
	}
	fmt.Fprintf(w, "\nREGRESSION: %d configuration(s) slower than %.0f%% over their best prior run\n",
		len(regs), 100**threshold)
	for _, r := range regs {
		fmt.Fprintf(w, "  %s: %.1f ms -> %.1f ms (%+.1f%%; best prior %s, newest %s)\n",
			r.Key, r.BestPrev.MeanMS, r.Newest.MeanMS, 100*r.Delta,
			r.BestPrev.Path, r.Newest.Path)
	}
	if *check {
		os.Exit(1)
	}
}
