package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"syscall"
	"time"
)

// Transport returns an http.RoundTripper that applies the injector's
// faults on the client side of each round trip:
//
//	latency   the request is delayed before being sent (cancellable via
//	          the request context);
//	reset     a synthetic ECONNRESET is returned without sending the
//	          request — errors.Is(err, syscall.ECONNRESET) holds, so
//	          retry classifiers treat it exactly like a real peer reset;
//	5xx       a synthetic response with the rule's status is returned
//	          without sending the request;
//	truncate  the request is sent normally, but the response body is
//	          clipped to the rule's byte budget and then fails with
//	          io.ErrUnexpectedEOF.
//
// base nil means http.DefaultTransport. A nil injector returns base
// unchanged.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if inj == nil {
		return base
	}
	return &transport{base: base, inj: inj}
}

type transport struct {
	base http.RoundTripper
	inj  *Injector
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if r, ok := t.inj.pick(Latency); ok && r.Latency > 0 {
		timer := time.NewTimer(r.Latency)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if _, ok := t.inj.pick(Reset); ok {
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	if r, ok := t.inj.pick(Err5xx); ok {
		body := fmt.Sprintf("chaos: injected %d", r.Status)
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", r.Status, http.StatusText(r.Status)),
			StatusCode:    r.Status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if r, ok := t.inj.pick(Truncate); ok {
		resp.Body = &truncatedBody{rc: resp.Body, budget: r.Bytes}
	}
	return resp, nil
}

// truncatedBody yields at most budget bytes, then fails the way a torn
// connection does.
type truncatedBody struct {
	rc     io.ReadCloser
	budget int64
	read   int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	remaining := b.budget - b.read
	if remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > remaining {
		p = p[:remaining]
	}
	n, err := b.rc.Read(p)
	b.read += int64(n)
	if err == io.EOF && b.read >= b.budget {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
