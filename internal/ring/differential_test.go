package ring

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"cnnhe/internal/primes"
)

// Differential suite: every limb backend (word and wide) is pitted against
// a big.Int reference on random polynomials, across chains shaped like the
// paper's parameter sets — the production chain's 40/26/…/26/40 word limbs
// with a 60-bit special, and the Table IV/VI ablation chains that split the
// same modulus into wide 62–122-bit limbs. The optimized kernels
// (hand-inlined Barrett/Shoup loops, lazy NTT butterflies, cached scalar
// constants) must agree bit-for-bit with plain modular arithmetic.

// diffChains returns the (name, bitSizes, specialBits, specialCount)
// configurations the differential suite sweeps.
func diffChains() []struct {
	name        string
	bits        []int
	specialBits int
	special     int
} {
	return []struct {
		name        string
		bits        []int
		specialBits int
		special     int
	}{
		{"paper-word-40-26x4-40", []int{40, 26, 26, 26, 26, 40}, 60, 1},
		{"word-30-45-61", []int{30, 45, 61}, 45, 1},
		{"wide-80-90", []int{80, 90}, 0, 0},
		{"wide-122", []int{122, 110}, 0, 0},
		{"mixed-40-80", []int{40, 80, 26}, 45, 1},
	}
}

// refMod computes v mod q as a canonical non-negative big.Int.
func refMod(v, q *big.Int) *big.Int { return new(big.Int).Mod(v, q) }

// coeffBig reads coefficient j of limb i as a big.Int.
func coeffBig(r *Ring, p *Poly, i, j int) *big.Int {
	out := new(big.Int)
	r.SubRings[i].CoeffBig(p.Coeffs[i], j, out)
	return out
}

// randPoly fills every limb (ciphertext + special) with uniform residues.
func randPoly(r *Ring, rng *rand.Rand) *Poly {
	p := r.NewPoly(r.MaxLevel())
	for _, i := range r.Limbs(r.MaxLevel(), true) {
		r.SubRings[i].SampleUniform(rng, p.Coeffs[i])
	}
	return p
}

func TestDifferentialPointwiseOpsVsBig(t *testing.T) {
	for _, cfg := range diffChains() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			chain, err := primes.BuildChain(5, cfg.bits, cfg.specialBits, cfg.special)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRing(32, chain.Moduli, cfg.special, 1)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			limbs := r.Limbs(r.MaxLevel(), true)
			a := randPoly(r, rng)
			b := randPoly(r, rng)

			type op struct {
				name string
				run  func(out *Poly)
				ref  func(av, bv, ov, q *big.Int) *big.Int // expected out given inputs a, b and prior out
			}
			scalar, _ := new(big.Int).SetString("123456789123456789123456789", 10)
			ops := []op{
				{"Add", func(out *Poly) { r.Add(limbs, a, b, out) },
					func(av, bv, _, q *big.Int) *big.Int { return refMod(new(big.Int).Add(av, bv), q) }},
				{"Sub", func(out *Poly) { r.Sub(limbs, a, b, out) },
					func(av, bv, _, q *big.Int) *big.Int { return refMod(new(big.Int).Sub(av, bv), q) }},
				{"Neg", func(out *Poly) { r.Neg(limbs, a, out) },
					func(av, _, _, q *big.Int) *big.Int { return refMod(new(big.Int).Neg(av), q) }},
				{"MulCoeffs", func(out *Poly) { r.MulCoeffs(limbs, a, b, out) },
					func(av, bv, _, q *big.Int) *big.Int { return refMod(new(big.Int).Mul(av, bv), q) }},
				{"MulCoeffsThenAdd", func(out *Poly) { r.MulCoeffsThenAdd(limbs, a, b, out) },
					func(av, bv, ov, q *big.Int) *big.Int {
						return refMod(new(big.Int).Add(ov, new(big.Int).Mul(av, bv)), q)
					}},
				{"MulScalar", func(out *Poly) { r.MulScalar(limbs, a, scalar, out) },
					func(av, _, _, q *big.Int) *big.Int { return refMod(new(big.Int).Mul(av, scalar), q) }},
			}
			for _, o := range ops {
				out := randPoly(r, rng) // nonzero so ThenAdd exercises accumulation
				prior := make(map[[2]int]*big.Int)
				for _, i := range limbs {
					for j := 0; j < r.NVal; j++ {
						prior[[2]int{i, j}] = coeffBig(r, out, i, j)
					}
				}
				o.run(out)
				for _, i := range limbs {
					q := r.SubRings[i].Modulus()
					for j := 0; j < r.NVal; j++ {
						want := o.ref(coeffBig(r, a, i, j), coeffBig(r, b, i, j), prior[[2]int{i, j}], q)
						got := coeffBig(r, out, i, j)
						if got.Cmp(want) != 0 {
							t.Fatalf("%s limb %d coeff %d: got %v want %v", o.name, i, j, got, want)
						}
					}
				}
			}
		})
	}
}

func TestDifferentialScalarOpsVsBig(t *testing.T) {
	for _, cfg := range diffChains() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			chain, err := primes.BuildChain(5, cfg.bits, cfg.specialBits, cfg.special)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRing(32, chain.Moduli, cfg.special, 1)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			a := randPoly(r, rng)
			for _, i := range r.Limbs(r.MaxLevel(), true) {
				sr := r.SubRings[i]
				q := sr.Modulus()
				// Repeated invocations with the same scalar exercise the
				// per-(subring, scalar) Shoup cache, including its warm path.
				for trial := 0; trial < 3; trial++ {
					c := new(big.Int).Rand(rng, q)
					s := new(big.Int).Rand(rng, q)
					out := make([]uint64, len(a.Coeffs[i]))
					for rep := 0; rep < 2; rep++ {
						sr.SubScalarThenMulScalar(a.Coeffs[i], c, s, out)
						for j := 0; j < r.NVal; j++ {
							av := coeffBig(r, a, i, j)
							want := refMod(new(big.Int).Mul(new(big.Int).Sub(av, c), s), q)
							var got big.Int
							sr.CoeffBig(out, j, &got)
							if got.Cmp(want) != 0 {
								t.Fatalf("SubScalarThenMulScalar limb %d coeff %d rep %d: got %v want %v",
									i, j, rep, &got, want)
							}
						}
					}
				}
				// Negative and oversized scalars must hit the big.Int slow
				// path and still agree.
				huge := new(big.Int).Lsh(big.NewInt(1), 200)
				neg := new(big.Int).Neg(big.NewInt(987654321))
				for _, s := range []*big.Int{huge, neg} {
					out := make([]uint64, len(a.Coeffs[i]))
					sr.MulScalar(a.Coeffs[i], s, out)
					for j := 0; j < r.NVal; j++ {
						av := coeffBig(r, a, i, j)
						want := refMod(new(big.Int).Mul(av, s), q)
						var got big.Int
						sr.CoeffBig(out, j, &got)
						if got.Cmp(want) != 0 {
							t.Fatalf("MulScalar(%v) limb %d coeff %d: got %v want %v", s, i, j, &got, want)
						}
					}
				}
			}
		})
	}
}

// TestDifferentialNTTVsNaive checks the optimized NTT/INTT pipeline against
// schoolbook negacyclic convolution per limb, on every backend.
func TestDifferentialNTTVsNaive(t *testing.T) {
	for _, cfg := range diffChains() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			chain, err := primes.BuildChain(4, cfg.bits, cfg.specialBits, cfg.special)
			if err != nil {
				t.Fatal(err)
			}
			n := 16
			r, err := NewRing(n, chain.Moduli, cfg.special, 1)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			for li, sr := range r.SubRings {
				q := sr.Modulus()
				w := sr.Width()
				a := make([]uint64, n*w)
				b := make([]uint64, n*w)
				sr.SampleUniform(rng, a)
				sr.SampleUniform(rng, b)

				// Reference: schoolbook negacyclic product in big.Int.
				av := make([]*big.Int, n)
				bv := make([]*big.Int, n)
				for j := 0; j < n; j++ {
					av[j], bv[j] = new(big.Int), new(big.Int)
					sr.CoeffBig(a, j, av[j])
					sr.CoeffBig(b, j, bv[j])
				}
				want := make([]*big.Int, n)
				for j := range want {
					want[j] = new(big.Int)
				}
				tmp := new(big.Int)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						tmp.Mul(av[i], bv[j])
						if k := i + j; k < n {
							want[k].Add(want[k], tmp)
						} else {
							want[k-n].Sub(want[k-n], tmp)
						}
					}
				}
				for j := range want {
					want[j].Mod(want[j], q)
				}

				sr.NTT(a)
				sr.NTT(b)
				out := make([]uint64, n*w)
				sr.MulCoeffs(a, b, out)
				sr.INTT(out)
				for j := 0; j < n; j++ {
					var got big.Int
					sr.CoeffBig(out, j, &got)
					if got.Cmp(want[j]) != 0 {
						t.Fatalf("limb %d (width %d) coeff %d: got %v want %v", li, w, j, &got, want[j])
					}
				}
			}
		})
	}
}

// TestDifferentialNTTRandomRoundTrip fuzzes NTT∘INTT identity at production
// degrees (where the unrolled stages and the specialized first/last stages
// all execute) for both backends.
func TestDifferentialNTTRandomRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		bits []int
		logN int
	}{
		{"word-26", []int{26}, 8},
		{"word-40", []int{40}, 9},
		{"word-61", []int{61}, 8},
		{"wide-90", []int{90}, 6},
	} {
		tc := tc
		t.Run(fmt.Sprintf("%s-logn%d", tc.name, tc.logN), func(t *testing.T) {
			chain, err := primes.BuildChain(tc.logN, tc.bits, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			n := 1 << tc.logN
			r, err := NewRing(n, chain.Moduli, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			sr := r.SubRings[0]
			rng := rand.New(rand.NewSource(17))
			for trial := 0; trial < 10; trial++ {
				a := make([]uint64, n*sr.Width())
				sr.SampleUniform(rng, a)
				orig := append([]uint64(nil), a...)
				sr.NTT(a)
				// All NTT outputs must be fully reduced.
				q := sr.Modulus()
				for j := 0; j < n; j++ {
					var v big.Int
					sr.CoeffBig(a, j, &v)
					if v.Cmp(q) >= 0 {
						t.Fatalf("trial %d: NTT output coeff %d = %v not reduced below q", trial, j, &v)
					}
				}
				sr.INTT(a)
				for j := range a {
					if a[j] != orig[j] {
						t.Fatalf("trial %d: INTT(NTT(a))[%d] = %d, want %d", trial, j, a[j], orig[j])
					}
				}
			}
		})
	}
}

// TestDifferentialDivideExactByLimb verifies the pooled-scratch rescale
// division against its defining congruence: out ≡ (p − p_src)·q_src^{-1}.
func TestDifferentialDivideExactByLimb(t *testing.T) {
	for _, cfg := range diffChains() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			chain, err := primes.BuildChain(5, cfg.bits, cfg.specialBits, cfg.special)
			if err != nil {
				t.Fatal(err)
			}
			r, err := NewRing(32, chain.Moduli, cfg.special, 1)
			if err != nil {
				t.Fatal(err)
			}
			if r.MaxLevel() < 1 {
				t.Skip("chain too short")
			}
			rng := rand.New(rand.NewSource(23))
			src := r.MaxLevel()
			limbs := r.Limbs(src-1, false)
			p := randPoly(r, rng)
			out := r.NewPolyQ(src - 1)
			r.DivideExactByLimb(src, limbs, p, out)
			qsrc := r.SubRings[src].Modulus()
			qsrcInv := make(map[int]*big.Int)
			for _, i := range limbs {
				qsrcInv[i] = new(big.Int).ModInverse(qsrc, r.SubRings[i].Modulus())
			}
			for _, i := range limbs {
				q := r.SubRings[i].Modulus()
				for j := 0; j < r.NVal; j++ {
					pij := coeffBig(r, p, i, j)
					psj := coeffBig(r, p, src, j)
					want := new(big.Int).Sub(pij, psj)
					want.Mul(want, qsrcInv[i])
					want.Mod(want, q)
					got := coeffBig(r, out, i, j)
					if got.Cmp(want) != 0 {
						t.Fatalf("limb %d coeff %d: got %v want %v", i, j, got, want)
					}
				}
			}
		})
	}
}
