// Command heinfer runs a single privacy-preserving classification: it
// plays both parties of Fig. 1 — the client encodes and encrypts an image
// under CKKS-RNS, the "server" side evaluates the compiled CNN plan
// blindly, and the client decrypts the logits.
//
// Usage:
//
//	heinfer -model models/cnn1.gob -image 3 -logn 12 [-backend rns|big] [-rnsparts 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn"
	"cnnhe/internal/mnist"
	"cnnhe/internal/nn"
	"cnnhe/internal/primes"
	"cnnhe/internal/tensor"
)

func main() {
	var (
		modelPath = flag.String("model", "models/cnn1.gob", "trained SLAF model (.gob)")
		imageIdx  = flag.Int("image", 0, "test-set image index")
		logN      = flag.Int("logn", 12, "ring degree exponent (14 = paper scale)")
		backend   = flag.String("backend", "rns", "rns (CKKS-RNS) or big (multiprecision CKKS)")
		rnsParts  = flag.Int("rnsparts", 0, "enable the Fig. 5 input-decomposition pipeline with this many parts (0 = off)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	model, arch, err := nn.LoadModel(*modelPath)
	if err != nil {
		log.Fatalf("loading model: %v (run hetrain first)", err)
	}
	_, test, src := mnist.Load(16, *imageIdx+1, *seed)
	fmt.Printf("model: %s   data: %s\n", arch, src)
	img := test.Image(*imageIdx)
	label := test.Labels[*imageIdx]

	plan, err := henn.Compile(model, 1<<(*logN-1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Describe())

	k := plan.Depth + 1
	if k < 13 {
		k = 13
	}
	bits := []int{40}
	for i := 0; i < k-2; i++ {
		bits = append(bits, 26)
	}
	bits = append(bits, 40)
	params, err := ckks.NewParameters(*logN, bits, 60, 1, math.Exp2(26))
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.CheckDepth(params.MaxLevel()); err != nil {
		log.Fatal(err)
	}

	var engine henn.Engine
	switch *backend {
	case "rns":
		e, err := henn.NewRNSEngine(params, plan.Rotations(), *seed+7)
		if err != nil {
			log.Fatal(err)
		}
		engine = e
	case "big":
		bp, err := ckksbig.FromRNSParameters(params)
		if err != nil {
			log.Fatal(err)
		}
		e, err := henn.NewBigEngine(bp, plan.Rotations(), *seed+7)
		if err != nil {
			log.Fatal(err)
		}
		engine = e
	default:
		log.Fatalf("unknown backend %q", *backend)
	}
	fmt.Printf("backend: %s, N=2^%d, chain length %d (log q = %d)\n",
		engine.Name(), *logN, k, params.Chain.LogQ())

	var logits henn.Logits
	var lat fmt.Stringer
	if *rnsParts > 0 {
		rp, err := henn.NewRNSPlan(plan, *rnsParts, true)
		if err != nil {
			log.Fatal(err)
		}
		l, d := rp.Infer(engine, img)
		logits, lat = l, d
	} else {
		l, d := plan.Infer(engine, img)
		logits, lat = l, d
	}

	// Plaintext reference.
	x := tensor.New(1, 28, 28)
	for i := range img {
		x.Data[i] = img[i] / 255
	}
	plain := model.Forward(x).Data

	fmt.Printf("\nencrypted classification latency: %v\n", lat)
	fmt.Printf("true label: %d\n", label)
	fmt.Printf("%-10s %12s %12s\n", "class", "HE logit", "plain logit")
	for i := range logits {
		fmt.Printf("%-10d %12.4f %12.4f\n", i, logits[i], plain[i])
	}
	fmt.Printf("\nHE prediction:    %d\n", logits.Argmax())
	fmt.Printf("plain prediction: %d\n", henn.Logits(plain).Argmax())
	_ = primes.PaperBitSizes
}
