package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"
)

// JSONRow is one machine-readable benchmark measurement. Accuracy
// fields are pointers because JSON has no NaN: absent means "not
// measured", mirroring HEResult's NaN convention.
type JSONRow struct {
	Table       string   `json:"table"`
	Model       string   `json:"model"`
	Backend     string   `json:"backend"`
	Chain       int      `json:"chain"`
	N           int      `json:"n"`
	MeanMS      float64  `json:"mean_ms"`
	P50MS       float64  `json:"p50_ms"`
	P95MS       float64  `json:"p95_ms"`
	MinMS       float64  `json:"min_ms"`
	MaxMS       float64  `json:"max_ms"`
	AccPct      *float64 `json:"accuracy_pct,omitempty"`
	TrainAccPct *float64 `json:"train_accuracy_pct,omitempty"`
}

// JSONReport is the envelope hebench writes next to its markdown tables.
type JSONReport struct {
	Timestamp string    `json:"timestamp"`
	LogN      int       `json:"logn"`
	Runs      int       `json:"runs"`
	AccImages int       `json:"acc_images"`
	Seed      int64     `json:"seed"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	Rows      []JSONRow `json:"rows"`
}

func pctPtr(frac float64) *float64 {
	if math.IsNaN(frac) {
		return nil
	}
	v := 100 * frac
	return &v
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// JSONRows converts measured table rows to their JSON form, tagged with
// the table they came from.
func JSONRows(table string, results []HEResult) []JSONRow {
	out := make([]JSONRow, 0, len(results))
	for _, r := range results {
		lat := r.Lat
		out = append(out, JSONRow{
			Table:       table,
			Model:       r.Model,
			Backend:     r.Backend,
			Chain:       r.Chain,
			N:           lat.N,
			MeanMS:      ms(lat.Avg),
			P50MS:       ms(lat.Percentile(50)),
			P95MS:       ms(lat.Percentile(95)),
			MinMS:       ms(lat.Min),
			MaxMS:       ms(lat.Max),
			AccPct:      pctPtr(r.Acc),
			TrainAccPct: pctPtr(r.TrainAcc),
		})
	}
	return out
}

// WriteJSON writes the benchmark report to path, creating or truncating
// the file.
func WriteJSON(path string, cfg Config, ts time.Time, rows []JSONRow) error {
	rep := JSONReport{
		Timestamp: ts.UTC().Format(time.RFC3339),
		LogN:      cfg.LogN,
		Runs:      cfg.Runs,
		AccImages: cfg.AccImages,
		Seed:      cfg.Seed,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Rows:      rows,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal json report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
