package ring

import (
	"math/big"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"cnnhe/internal/primes"
)

// Pool suite: correctness of the persistent worker pool itself, plus a
// concurrency hammer that mirrors heserve's batcher — many goroutines
// issuing overlapping ring ops on a shared parallel ring. Run under
// `go test -race` (the Makefile's test-race target does) to prove the
// revived limb-parallel path is data-race-free and deterministic.

func TestPoolRunCoversAllIndices(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 97, 1000} {
		hits := make([]atomic.Int32, n)
		pool().Run(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d executed %d times, want exactly 1", n, i, got)
			}
		}
	}
}

// TestPoolNestedRun proves a Run issued from inside a Run callback cannot
// deadlock: the submitting goroutine always participates in draining its
// own job, so progress never depends on a free worker. The henn executor's
// parallel scheduler nests exactly like this.
func TestPoolNestedRun(t *testing.T) {
	outer := 2 * poolWorkers()
	inner := 2 * poolWorkers()
	var total atomic.Int64
	pool().Run(outer, func(i int) {
		pool().Run(inner, func(j int) { total.Add(1) })
	})
	if got := total.Load(); got != int64(outer*inner) {
		t.Fatalf("nested Run executed %d tasks, want %d", got, outer*inner)
	}
}

func TestParallelRangeGrainCoverage(t *testing.T) {
	for _, tc := range []struct{ n, grain int }{
		{0, 64}, {1, 64}, {63, 64}, {64, 64}, {65, 64}, {1000, 1}, {1000, 4096},
	} {
		hits := make([]atomic.Int32, tc.n)
		var mu sync.Mutex
		spans := 0
		ParallelRangeGrain(true, tc.n, tc.grain, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("n=%d grain=%d: bad span [%d,%d)", tc.n, tc.grain, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
			mu.Lock()
			spans++
			mu.Unlock()
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("n=%d grain=%d: index %d covered %d times", tc.n, tc.grain, i, got)
			}
		}
		// Serial path must agree on coverage too.
		serial := make([]bool, tc.n)
		ParallelRangeGrain(false, tc.n, tc.grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				serial[i] = true
			}
		})
		for i, ok := range serial {
			if !ok {
				t.Fatalf("n=%d grain=%d serial: index %d not covered", tc.n, tc.grain, i)
			}
		}
	}
}

// hammerRing builds a mid-size ring with both word and wide limbs so the
// hammer exercises both backends through the pool.
func hammerRing(t *testing.T) *Ring {
	t.Helper()
	chain, err := primes.BuildChain(8, []int{40, 26, 26, 80}, 45, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(256, chain.Moduli, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Parallel = true
	return r
}

// opMix runs a representative op sequence (the same mix a CNN1 forward
// pass issues: NTT-domain muls, adds, automorphisms, a rescale division)
// and leaves the result in out.
func opMix(r *Ring, seed int64, out *Poly) {
	rng := rand.New(rand.NewSource(seed))
	limbs := r.Limbs(r.MaxLevel(), true)
	a := r.NewPoly(r.MaxLevel())
	b := r.NewPoly(r.MaxLevel())
	for _, i := range limbs {
		r.SubRings[i].SampleUniform(rng, a.Coeffs[i])
		r.SubRings[i].SampleUniform(rng, b.Coeffs[i])
	}
	tmp := r.NewPoly(r.MaxLevel())
	r.NTT(limbs, a)
	r.NTT(limbs, b)
	r.MulCoeffs(limbs, a, b, tmp)
	r.MulCoeffsThenAdd(limbs, a, a, tmp)
	r.Add(limbs, tmp, b, tmp)
	r.Sub(limbs, tmp, a, tmp)
	r.INTT(limbs, tmp)
	qLimbs := r.Limbs(r.MaxLevel()-1, false)
	r.DivideExactByLimb(r.MaxLevel(), qLimbs, tmp, out)
}

// TestPoolHammerDeterministic launches 4×workers goroutines concurrently
// driving the shared parallel ring, then checks every goroutine's result is
// bit-identical to the serial reference for its seed. Failure under -race
// means the pool shares mutable state between tasks; failure of the compare
// means nondeterministic scheduling leaked into results.
func TestPoolHammerDeterministic(t *testing.T) {
	r := hammerRing(t)
	qLimbs := r.Limbs(r.MaxLevel()-1, false)

	// Serial references, one per seed.
	rSerial := hammerRing(t)
	rSerial.Parallel = false
	const seeds = 8
	refs := make([]*Poly, seeds)
	for s := 0; s < seeds; s++ {
		refs[s] = rSerial.NewPolyQ(rSerial.MaxLevel() - 1)
		opMix(rSerial, int64(s), refs[s])
	}

	workers := 4 * poolWorkers()
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				seed := (w + round) % seeds
				got := r.NewPolyQ(r.MaxLevel() - 1)
				opMix(r, int64(seed), got)
				if !r.Equal(qLimbs, got, refs[seed]) {
					errs <- "parallel result diverged from serial reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestPoolHammerScratchPool drives GetPoly/PutPoly and the rescale scratch
// slab pool from many goroutines at once; -race flags any slab handed to
// two tasks simultaneously.
func TestPoolHammerScratchPool(t *testing.T) {
	r := hammerRing(t)
	limbs := r.Limbs(r.MaxLevel(), true)
	qLimbs := r.Limbs(r.MaxLevel()-1, false)
	rng := rand.New(rand.NewSource(42))
	src := r.NewPoly(r.MaxLevel())
	for _, i := range limbs {
		r.SubRings[i].SampleUniform(rng, src.Coeffs[i])
	}
	ref := r.NewPolyQ(r.MaxLevel() - 1)
	r.DivideExactByLimb(r.MaxLevel(), qLimbs, src, ref)

	var wg sync.WaitGroup
	fail := make(chan struct{}, 1)
	for w := 0; w < 4*poolWorkers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				out := r.GetPoly()
				r.DivideExactByLimb(r.MaxLevel(), qLimbs, src, out)
				if !r.Equal(qLimbs, out, ref) {
					select {
					case fail <- struct{}{}:
					default:
					}
				}
				r.PutPoly(out)
			}
		}()
	}
	wg.Wait()
	select {
	case <-fail:
		t.Fatal("concurrent DivideExactByLimb diverged from reference")
	default:
	}
}

// TestAllocsDivideExactByLimbSerial pins the pooled-scratch satellite: the
// old code made a fresh N-word tmp slice per limb per call; the pooled
// version is allowed exactly one small allocation — the closure header
// handed to forLimbSlabs, which escapes because the parallel branch ships
// it to the worker pool. Parallel mode has small fixed job-dispatch
// allocations on top, so the bound is asserted serial-only.
func TestAllocsDivideExactByLimbSerial(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector allocation instrumentation skews AllocsPerRun")
	}
	r := hammerRing(t)
	r.Parallel = false
	limbs := r.Limbs(r.MaxLevel(), true)
	qLimbs := r.Limbs(r.MaxLevel()-1, false)
	rng := rand.New(rand.NewSource(3))
	src := r.NewPoly(r.MaxLevel())
	for _, i := range limbs {
		r.SubRings[i].SampleUniform(rng, src.Coeffs[i])
	}
	out := r.NewPolyQ(r.MaxLevel() - 1)
	r.DivideExactByLimb(r.MaxLevel(), qLimbs, src, out) // warm the slab pool
	allocs := testing.AllocsPerRun(20, func() {
		r.DivideExactByLimb(r.MaxLevel(), qLimbs, src, out)
	})
	if allocs > 1 {
		t.Fatalf("DivideExactByLimb allocated %.1f objects/op in serial mode, want ≤1 (closure header only)", allocs)
	}
}

// TestAllocsMulScalarCached pins the scalar-cache satellite: once the
// (subring, scalar) Shoup constant is cached, word-backend MulScalar and
// SubScalarThenMulScalar must be allocation-free for uint64-range scalars.
func TestAllocsMulScalarCached(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector allocation instrumentation skews AllocsPerRun")
	}
	r := hammerRing(t)
	r.Parallel = false
	rng := rand.New(rand.NewSource(5))
	sr := r.SubRings[0] // word limb
	a := make([]uint64, r.NVal*sr.Width())
	out := make([]uint64, len(a))
	sr.SampleUniform(rng, a)
	s := big.NewInt(123456789)
	c := big.NewInt(55555)
	sr.MulScalar(a, s, out)                 // warm the cache
	sr.SubScalarThenMulScalar(a, c, s, out) // warm the cache
	if allocs := testing.AllocsPerRun(20, func() { sr.MulScalar(a, s, out) }); allocs > 0 {
		t.Fatalf("cached MulScalar allocated %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { sr.SubScalarThenMulScalar(a, c, s, out) }); allocs > 0 {
		t.Fatalf("cached SubScalarThenMulScalar allocated %.1f objects/op, want 0", allocs)
	}
}
