package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cnnhe/internal/client"
	"cnnhe/internal/telemetry"
)

// captureLogs routes slog output into a buffer for the test's duration.
func captureLogs(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	prev := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(&buf, nil)))
	t.Cleanup(func() { slog.SetDefault(prev) })
	return &buf
}

// flightEntry scrapes the global flight recorder for traceID.
func flightEntry(traceID string) (telemetry.RequestSummary, bool) {
	for _, e := range telemetry.Flight().Snapshot() {
		if e.TraceID == traceID {
			return e, true
		}
	}
	return telemetry.RequestSummary{}, false
}

// TestTraceparentPropagationE2E is the tracing acceptance test on the
// plaintext route: a client-supplied traceparent must surface (a) in
// the HTTP response header and body, (b) in a slog line, (c) in a
// /debug/requests entry with a non-zero queue/exec split, and (d) in a
// Chrome-trace export whose spans carry per-op level and noise_bits
// attributes.
func TestTraceparentPropagationE2E(t *testing.T) {
	logs := captureLogs(t)
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parent = "00-" + traceID + "-00f067aa0ba902b7-01"
	body, err := json.Marshal(ClassifyRequest{Image: testImage(rand.New(rand.NewSource(71)), 64)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/classify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderTraceparent, parent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}

	// (a) The response echoes the client's trace ID, with a fresh server
	// span, plus the request-ID join handle.
	echoed := resp.Header.Get(HeaderTraceparent)
	if !strings.Contains(echoed, traceID) {
		t.Fatalf("response traceparent %q does not carry client trace ID %s", echoed, traceID)
	}
	if strings.Contains(echoed, "00f067aa0ba902b7") {
		t.Fatalf("response traceparent %q reused the client's span ID", echoed)
	}
	reqID := resp.Header.Get(HeaderRequestID)
	if reqID == "" {
		t.Fatal("response is missing X-Request-Id")
	}
	var cr ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.TraceID != traceID || cr.RequestID != reqID {
		t.Fatalf("body IDs (%s, %s) disagree with headers (%s, %s)", cr.TraceID, cr.RequestID, traceID, reqID)
	}

	// (b) At least one slog line carries the trace ID.
	if !strings.Contains(logs.String(), traceID) {
		t.Fatalf("no slog line carries trace ID %s:\n%s", traceID, logs.String())
	}

	// (c) The flight recorder holds the request with a non-zero
	// queue/exec split.
	entry, ok := flightEntry(traceID)
	if !ok {
		t.Fatalf("no /debug/requests entry for trace %s", traceID)
	}
	if entry.Route != "classify" || entry.Outcome != "ok" {
		t.Fatalf("flight entry %+v: want route classify, outcome ok", entry)
	}
	if entry.QueueMS <= 0 || entry.EvalMS <= 0 {
		t.Fatalf("flight entry lacks a queue/exec split: queue %v ms, eval %v ms", entry.QueueMS, entry.EvalMS)
	}
	if entry.RequestID != reqID {
		t.Fatalf("flight request ID %s, response header %s", entry.RequestID, reqID)
	}
	if len(entry.TopOps) == 0 {
		t.Fatal("flight entry carries no per-kind op times")
	}

	// (d) The Chrome-trace export joins on the trace ID and its spans
	// carry HE attributes.
	fts := httptest.NewServer(telemetry.Flight().Handler())
	defer fts.Close()
	tresp, err := http.Get(fts.URL + "?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace export status %s", tresp.Status)
	}
	traceJSON, err := io.ReadAll(tresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{traceID, `"level"`, `"noise_bits"`, `"scale"`, "trace_context"} {
		if !bytes.Contains(traceJSON, []byte(want)) {
			t.Errorf("Chrome trace export missing %s", want)
		}
	}
}

// TestTraceServerGeneratedFallback: requests without a traceparent get
// a server-generated trace that still lands everywhere.
func TestTraceServerGeneratedFallback(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postClassify(t, ts.URL, testImage(rand.New(rand.NewSource(72)), 64))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	tc, err := telemetry.ParseTraceparent(resp.Header.Get(HeaderTraceparent))
	if err != nil {
		t.Fatalf("server-generated traceparent invalid: %v", err)
	}
	var cr ClassifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.TraceID != tc.TraceIDString() {
		t.Fatalf("body trace_id %s, header %s", cr.TraceID, tc.TraceIDString())
	}
	if _, ok := flightEntry(cr.TraceID); !ok {
		t.Fatalf("no flight entry for server-generated trace %s", cr.TraceID)
	}

	// A second request draws a different ID.
	resp2 := postClassify(t, ts.URL, testImage(rand.New(rand.NewSource(73)), 64))
	defer resp2.Body.Close()
	if got := resp2.Header.Get(HeaderTraceparent); got == resp.Header.Get(HeaderTraceparent) {
		t.Fatalf("two requests share traceparent %q", got)
	}
}

// TestTraceRejectionCarriesIDs: an admission-time rejection still
// returns the join handles and lands in the flight recorder, so shed
// load is debuggable too. Uses the shutdown rejection — the one
// admission failure a test can force deterministically.
func TestTraceRejectionCarriesIDs(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(ClassifyRequest{Image: testImage(rand.New(rand.NewSource(74)), 64)})
	resp, err := http.Post(ts.URL+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %s, want 503 from a draining server", resp.Status)
	}
	var eb struct {
		Error     string `json:"error"`
		TraceID   string `json:"trace_id"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.TraceID == "" || eb.RequestID == "" {
		t.Fatalf("503 body lacks join handles: %+v", eb)
	}
	if got := resp.Header.Get(HeaderTraceparent); !strings.Contains(got, eb.TraceID) {
		t.Fatalf("response traceparent %q does not carry body trace_id %s", got, eb.TraceID)
	}
	entry, ok := flightEntry(eb.TraceID)
	if !ok {
		t.Fatalf("rejected request %s not in flight recorder", eb.TraceID)
	}
	if entry.Outcome != "shutdown" || entry.Error == "" {
		t.Fatalf("flight entry %+v: want outcome shutdown with an error", entry)
	}
}

// TestKeyedTraceE2E covers the encrypted route end to end through the
// client SDK (the hectl path): the SDK-stamped trace ID must come back
// in the result, join a flight entry with a non-zero lock/eval split,
// and resolve to a Chrome trace whose spans carry HE attributes.
func TestKeyedTraceE2E(t *testing.T) {
	logs := captureLogs(t)
	f := newKeyedFixture(t)
	ks := f.clientKeys(t, 95)
	img := testImage(rand.New(rand.NewSource(9)), f.plan.InputDim)

	res, err := f.cl.ClassifyEncrypted(context.Background(), ks, img, f.plan.OutputDim)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" || res.RequestID == "" {
		t.Fatalf("result lacks join handles: %+v", res)
	}
	if !strings.Contains(logs.String(), res.TraceID) {
		t.Fatalf("no slog line carries trace ID %s:\n%s", res.TraceID, logs.String())
	}
	entry, ok := flightEntry(res.TraceID)
	if !ok {
		t.Fatalf("no flight entry for trace %s", res.TraceID)
	}
	if entry.Route != "classify_encrypted" || entry.Outcome != "ok" {
		t.Fatalf("flight entry %+v: want route classify_encrypted, outcome ok", entry)
	}
	if entry.EvalMS <= 0 {
		t.Fatalf("flight entry lacks eval time: %+v", entry)
	}
	rec := telemetry.Flight().Trace(res.TraceID)
	if rec == nil {
		t.Fatalf("trace ring lost recording for %s", res.TraceID)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{res.TraceID, `"level"`, `"noise_bits"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("keyed Chrome trace missing %s", want)
		}
	}
}

// TestTraceMetricsGolden pins the new cnnhe_trace_* metric families on
// /metrics: requests split by trace-ID source, and the flight-recorder
// entry counter.
func TestTraceMetricsGolden(t *testing.T) {
	telemetry.SetEnabled(true)
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One server-generated and one client-supplied trace.
	resp := postClassify(t, ts.URL, testImage(rand.New(rand.NewSource(75)), 64))
	resp.Body.Close()
	body, _ := json.Marshal(ClassifyRequest{Image: testImage(rand.New(rand.NewSource(76)), 64)})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/classify", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderTraceparent, telemetry.NewTraceContext().Traceparent())
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()

	ms := httptest.NewServer(telemetry.Handler(telemetry.Default()))
	defer ms.Close()
	mresp, err := http.Get(ms.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`cnnhe_trace_requests_total{source="client"}`,
		`cnnhe_trace_requests_total{source="server"}`,
		`cnnhe_trace_flight_entries_total`,
	} {
		if !bytes.Contains(text, []byte(line)) {
			t.Errorf("metrics output missing %q", line)
		}
	}
	// client.HeaderTraceparent and the serve-side constant must agree —
	// they are the same wire header.
	if client.HeaderTraceparent != HeaderTraceparent {
		t.Fatalf("header constants diverged: client %q, serve %q", client.HeaderTraceparent, HeaderTraceparent)
	}
}
