// Package chaos provides seeded, schedule-driven fault injection at the
// network level, complementing internal/faults (which corrupts ciphertexts
// inside the engine). Where faults asks "does the guarded runtime catch a
// bad backend?", chaos asks "does the serving stack survive a bad
// network?": added latency, connection resets, truncated bodies, and 5xx
// bursts, injected either server-side (WrapListener) or client-side
// (Transport).
//
// Faults are configured by a compact spec string so the same grammar works
// as a CLI flag (heserve -chaos, hebombard -chaos) and in tests:
//
//	kind[:opt=val[:opt=val...]][,kind...]
//
// Kinds and their options:
//
//	latency    delay connection reads / round trips.   ms (default 50)
//	reset      kill the TCP connection mid-exchange (RST server-side,
//	           synthetic ECONNRESET client-side).
//	truncate   cut the response body short.            bytes (default 64)
//	5xx        answer with a synthetic error status
//	           (client-side Transport only).           status (default 503)
//
// Every kind takes p (probability per event, default 1) and an optional
// activity window relative to injector creation: start, dur, period.
// With period set the window repeats, giving bursts:
//
//	"latency:ms=200:p=0.5,5xx:p=0.3:start=2s:dur=1s:period=10s"
//
// injects 200 ms on half of all events, plus a 1-second 503 burst (30 %
// of requests) beginning 2 s into every 10 s cycle.
//
// All randomness flows from the Injector's seed through a single guarded
// source, so a run with p<1 faults is reproducible given the same seed
// and event order.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable network fault classes.
type Kind int

const (
	// Latency delays reads (listener side) or round trips (client side).
	Latency Kind = iota
	// Reset kills the connection: TCP RST from a wrapped listener, a
	// synthetic ECONNRESET from a wrapped transport.
	Reset
	// Truncate cuts the body short: the listener closes the connection
	// after a byte budget, the transport clips the response body.
	Truncate
	// Err5xx answers with a synthetic error status without forwarding
	// the request (Transport only; a listener has no HTTP framing).
	Err5xx
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Err5xx:
		return "5xx"
	}
	return fmt.Sprintf("chaos.Kind(%d)", int(k))
}

// Rule configures one fault class.
type Rule struct {
	// Kind selects the fault class.
	Kind Kind
	// P is the per-event firing probability in (0, 1]; 0 means 1.
	P float64
	// Latency is the injected delay for Latency rules (default 50ms).
	Latency time.Duration
	// Bytes is the body budget for Truncate rules (default 64).
	Bytes int64
	// Status is the synthetic response code for Err5xx rules (default 503).
	Status int
	// Start, Dur, Period define the activity window relative to the
	// Injector's creation. Zero values mean always active; Period > 0
	// repeats the [Start, Start+Dur) window every Period.
	Start, Dur, Period time.Duration
}

// Injector evaluates a rule set against a seeded random source. One
// Injector can back any number of listeners and transports; counters
// report what actually fired.
type Injector struct {
	rules []Rule
	epoch time.Time
	now   func() time.Time // test hook

	mu  sync.Mutex
	rng *rand.Rand

	fired [4]atomic.Int64 // indexed by Kind
}

// New builds an Injector over rules with the given seed. A nil or empty
// rule set yields an inert injector (wrappers pass through untouched).
func New(seed int64, rules []Rule) *Injector {
	inj := &Injector{
		rules: rules,
		now:   time.Now,
		rng:   rand.New(rand.NewSource(seed)),
	}
	inj.epoch = inj.now()
	return inj
}

// Parse builds an Injector directly from a spec string (see the package
// comment for the grammar).
func Parse(spec string, seed int64) (*Injector, error) {
	rules, err := ParseRules(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, rules), nil
}

// ParseRules parses the spec grammar into rules. An empty spec is an
// empty rule set, not an error.
func ParseRules(spec string) ([]Rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		r := Rule{}
		switch parts[0] {
		case "latency":
			r.Kind = Latency
			r.Latency = 50 * time.Millisecond
		case "reset":
			r.Kind = Reset
		case "truncate":
			r.Kind = Truncate
			r.Bytes = 64
		case "5xx":
			r.Kind = Err5xx
			r.Status = 503
		default:
			return nil, fmt.Errorf("chaos: unknown fault kind %q", parts[0])
		}
		for _, opt := range parts[1:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("chaos: option %q in %q is not key=value", opt, item)
			}
			var err error
			switch k {
			case "p":
				r.P, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.P <= 0 || r.P > 1) {
					err = fmt.Errorf("probability %v outside (0, 1]", r.P)
				}
			case "ms":
				var ms int64
				ms, err = strconv.ParseInt(v, 10, 64)
				r.Latency = time.Duration(ms) * time.Millisecond
			case "bytes":
				r.Bytes, err = strconv.ParseInt(v, 10, 64)
			case "status":
				r.Status, err = strconv.Atoi(v)
				if err == nil && (r.Status < 500 || r.Status > 599) {
					err = fmt.Errorf("status %d outside 5xx", r.Status)
				}
			case "start":
				r.Start, err = time.ParseDuration(v)
			case "dur":
				r.Dur, err = time.ParseDuration(v)
			case "period":
				r.Period, err = time.ParseDuration(v)
			default:
				return nil, fmt.Errorf("chaos: unknown option %q in %q", k, item)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: option %q in %q: %v", opt, item, err)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// active reports whether r's schedule window covers the instant now.
func (r Rule) active(sinceEpoch time.Duration) bool {
	if r.Start == 0 && r.Dur == 0 && r.Period == 0 {
		return true
	}
	off := sinceEpoch
	if r.Period > 0 {
		off %= r.Period
	}
	if off < r.Start {
		return false
	}
	if r.Dur > 0 && off >= r.Start+r.Dur {
		return false
	}
	return true
}

// pick returns the first rule of kind k that is active and wins its
// probability roll for this event.
func (inj *Injector) pick(k Kind) (Rule, bool) {
	if inj == nil {
		return Rule{}, false
	}
	since := inj.now().Sub(inj.epoch)
	for _, r := range inj.rules {
		if r.Kind != k || !r.active(since) {
			continue
		}
		p := r.P
		if p == 0 {
			p = 1
		}
		inj.mu.Lock()
		hit := inj.rng.Float64() < p
		inj.mu.Unlock()
		if hit {
			inj.fired[k].Add(1)
			return r, true
		}
	}
	return Rule{}, false
}

// Fired reports how many faults of each kind this injector delivered.
func (inj *Injector) Fired() map[string]int64 {
	if inj == nil {
		return nil
	}
	out := make(map[string]int64, 4)
	for k := Latency; k <= Err5xx; k++ {
		if n := inj.fired[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}
