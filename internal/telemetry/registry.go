package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Enabled gates metric updates process-wide. Serve enables it; tests and
// CLIs may call SetEnabled directly.
var enabled atomic.Bool

// Enabled reports whether registry metrics are being collected.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns metric collection on or off.
func SetEnabled(on bool) { enabled.Store(on) }

// Label is one metric dimension (a Prometheus label pair).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for Label{k, v}.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add applies a delta (CAS loop; use for in-flight style gauges).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. Bounds are upper
// bucket boundaries in increasing order; an implicit +Inf bucket catches
// the rest. Observations are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, non-cumulative
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Bucket search: bounds are short (≲20), linear scan beats binary
	// search on real latency distributions where most samples are small.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// LatencyBuckets covers HE op and inference latencies: 100µs to 60s,
// roughly ×2.5 per step.
var LatencyBuckets = []float64{
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 30, 60,
}

type metricType int

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labelled instrument inside a family.
type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series of one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	bounds []float64
	series map[string]*series
	order  []string // insertion-ordered series keys (render is re-sorted)
}

// Registry holds metric families and hands out instruments. Retrieval is
// idempotent: the same (name, labels) always returns the same instrument,
// so call sites may re-resolve freely. The zero value is not usable; use
// NewRegistry or the process Default registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry that instrumented packages
// (exec, guard, henn) feed and that Serve exposes.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// seriesKey canonicalises a label set (sorted copy returned for storage).
func seriesKey(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Key)
		b.WriteByte(0xff)
		b.WriteString(l.Value)
		b.WriteByte(0xfe)
	}
	return b.String(), ls
}

// lookup finds or creates the series for (name, labels), enforcing type
// and bucket consistency. Misuse (invalid name, type clash) panics: these
// are programmer errors at instrumentation sites, exactly like expvar.
func (r *Registry) lookup(name, help string, typ metricType, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) || strings.Contains(l.Key, ":") {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l.Key, name))
		}
	}
	key, sorted := seriesKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s, requested as %s", name, f.typ, typ))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: sorted}
		switch typ {
		case typeCounter:
			s.c = &Counter{}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, typeCounter, nil, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, typeGauge, nil, labels).g
}

// Histogram returns the histogram for (name, labels), creating it on
// first use. The first registration of a name fixes its bucket bounds;
// later calls may pass nil to reuse them.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not increasing at %d", name, i))
		}
	}
	return r.lookup(name, help, typeHistogram, bounds, labels).h
}

// ----- snapshots -----

// BucketCount is one cumulative histogram bucket of a snapshot.
type BucketCount struct {
	UpperBound float64 `json:"le"` // +Inf for the last bucket
	Count      int64   `json:"count"`
}

// SeriesSnapshot is the frozen state of one labelled series.
type SeriesSnapshot struct {
	Labels  []Label       `json:"labels,omitempty"`
	Value   float64       `json:"value"`             // counter/gauge value; histogram sum
	Count   int64         `json:"count,omitempty"`   // histogram only
	Buckets []BucketCount `json:"buckets,omitempty"` // histogram only, cumulative
}

// FamilySnapshot is the frozen state of one metric family.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is a point-in-time copy of a registry, safe to read, diff and
// serialise without holding any registry locks.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot freezes the registry. Families and series are sorted by name
// and label signature so output is deterministic.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var snap Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ.String()}
		r.mu.Lock()
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		sers := make([]*series, len(keys))
		for i, k := range keys {
			sers[i] = f.series[k]
		}
		r.mu.Unlock()
		for _, s := range sers {
			ss := SeriesSnapshot{Labels: append([]Label(nil), s.labels...)}
			switch f.typ {
			case typeCounter:
				ss.Value = float64(s.c.Value())
			case typeGauge:
				ss.Value = s.g.Value()
			case typeHistogram:
				ss.Value = s.h.Sum()
				ss.Count = s.h.Count()
				cum := int64(0)
				for i := range s.h.counts {
					cum += s.h.counts[i].Load()
					ub := math.Inf(1)
					if i < len(f.bounds) {
						ub = f.bounds[i]
					}
					ss.Buckets = append(ss.Buckets, BucketCount{UpperBound: ub, Count: cum})
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Sub returns the elementwise difference s − prev, matching series by
// family name and label signature. Series absent from prev pass through
// unchanged; gauges are not differenced (the current value is kept).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	prevVal := map[string]SeriesSnapshot{}
	for _, f := range prev.Families {
		for _, ser := range f.Series {
			k, _ := seriesKey(ser.Labels)
			prevVal[f.Name+"\x00"+k] = ser
		}
	}
	out := Snapshot{}
	for _, f := range s.Families {
		nf := FamilySnapshot{Name: f.Name, Help: f.Help, Type: f.Type}
		for _, ser := range f.Series {
			k, _ := seriesKey(ser.Labels)
			d := ser
			d.Labels = append([]Label(nil), ser.Labels...)
			d.Buckets = append([]BucketCount(nil), ser.Buckets...)
			if p, ok := prevVal[f.Name+"\x00"+k]; ok && f.Type != "gauge" {
				d.Value -= p.Value
				d.Count -= p.Count
				for i := range d.Buckets {
					if i < len(p.Buckets) {
						d.Buckets[i].Count -= p.Buckets[i].Count
					}
				}
			}
			nf.Series = append(nf.Series, d)
		}
		out.Families = append(out.Families, nf)
	}
	return out
}

// Family returns the named family snapshot, if present.
func (s Snapshot) Family(name string) (FamilySnapshot, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return FamilySnapshot{}, false
}

// Label returns the value of the named label ("" when absent).
func (ss SeriesSnapshot) Label(key string) string {
	for _, l := range ss.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// ----- Prometheus text rendering -----

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the Prometheus text format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf(`%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders a frozen snapshot in the Prometheus text
// exposition format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, f := range s.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, ser := range f.Series {
			switch f.Type {
			case "histogram":
				for _, b := range ser.Buckets {
					le := "+Inf"
					if !math.IsInf(b.UpperBound, 1) {
						le = formatValue(b.UpperBound)
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.Name, renderLabels(ser.Labels, L("le", le)), b.Count); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, renderLabels(ser.Labels), formatValue(ser.Value)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, renderLabels(ser.Labels), ser.Count); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, renderLabels(ser.Labels), formatValue(ser.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
