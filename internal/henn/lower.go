package henn

import (
	"fmt"
	"math"

	"cnnhe/internal/henn/ir"
)

// This file lowers a compiled Plan (or RNSPlan) to the explicit op graph
// of internal/henn/ir. Lowering runs the legacy Stage.Eval closures
// against a symbolic tracing engine whose ciphertexts carry only an op
// ID and the statically inferred (level, scale). Because every engine
// primitive transforms level and scale by a fixed arithmetic rule (see
// the ir package doc), the trace is exact: the op sequence, levels and
// scales recorded here are precisely those the eager interpreter would
// produce against a real backend with the same parameters. Trace
// emission order IS the legacy engine-call order, which is what lets
// the sequential executor replay a graph bit-identically.

// traceCt is the tracer's symbolic ciphertext: the ID of the producing
// op plus the statically inferred level and scale of its output.
type traceCt struct {
	id    int
	level int
	scale float64
}

// tracer implements Engine symbolically. Parameter queries (Slots,
// MaxLevel, Scale, QiFloat) delegate to the real engine; ciphertext ops
// append ir.Ops to the graph under construction. Invalid programs —
// level mismatches, rescaling at level 0, scale drift — panic with an
// error value that Lower recovers into a compile-time error.
type tracer struct {
	e     Engine
	g     *ir.Graph
	stage int
}

func newTracer(e Engine, inputs int) *tracer {
	return &tracer{
		e:     e,
		g:     &ir.Graph{Slots: e.Slots(), Inputs: inputs, Output: -1},
		stage: -1,
	}
}

// beginStage opens a new stage group; subsequent ops belong to it.
func (t *tracer) beginStage(name string, record bool) {
	t.g.Stages = append(t.g.Stages, ir.StageInfo{Name: name, Out: -1, Record: record})
	t.stage = len(t.g.Stages) - 1
}

// setStageOut marks the op whose output is the current stage's result.
func (t *tracer) setStageOut(id int) {
	t.g.Stages[t.stage].Out = id
}

// emit appends op to the graph and returns its symbolic result.
func (t *tracer) emit(op ir.Op) *traceCt {
	op.ID = len(t.g.Ops)
	op.Stage = t.stage
	t.g.Ops = append(t.g.Ops, op)
	return &traceCt{id: op.ID, level: op.Level, scale: op.Scale}
}

// encrypt emits the OpEncrypt for input slot inputIdx. Fresh ciphertexts
// start at MaxLevel with the engine's default scale.
func (t *tracer) encrypt(inputIdx int) *traceCt {
	return t.emit(ir.Op{
		Kind:     ir.OpEncrypt,
		InputIdx: inputIdx,
		Hoist:    -1,
		Level:    t.e.MaxLevel(),
		Scale:    t.e.Scale(),
	})
}

// in unwraps a symbolic ciphertext, failing the trace on foreign handles.
func (t *tracer) in(op string, ct Ct) *traceCt {
	c, ok := ct.(*traceCt)
	if !ok {
		panic(fmt.Errorf("henn: lower: %s received a non-traced ciphertext %T", op, ct))
	}
	return c
}

// traceScaleClose mirrors the backends' scale tolerance (relative 2^-40).
func traceScaleClose(a, b float64) bool {
	return math.Abs(a-b) <= math.Max(a, b)*math.Exp2(-40)
}

// Name implements Engine.
func (t *tracer) Name() string { return "trace(" + t.e.Name() + ")" }

// Slots implements Engine.
func (t *tracer) Slots() int { return t.e.Slots() }

// MaxLevel implements Engine.
func (t *tracer) MaxLevel() int { return t.e.MaxLevel() }

// Scale implements Engine.
func (t *tracer) Scale() float64 { return t.e.Scale() }

// QiFloat implements Engine.
func (t *tracer) QiFloat(level int) float64 { return t.e.QiFloat(level) }

// Level implements Engine.
func (t *tracer) Level(ct Ct) int { return t.in("Level", ct).level }

// ScaleOf implements Engine.
func (t *tracer) ScaleOf(ct Ct) float64 { return t.in("ScaleOf", ct).scale }

// EncryptVec implements Engine. Stages never encrypt — the inference
// driver does — so a traced EncryptVec is a structural bug.
func (t *tracer) EncryptVec(values []float64) Ct {
	panic(fmt.Errorf("henn: lower: EncryptVec called inside a stage"))
}

// DecryptVec implements Engine. Decryption happens after the graph's
// output, never inside a stage.
func (t *tracer) DecryptVec(ct Ct) []float64 {
	panic(fmt.Errorf("henn: lower: DecryptVec called inside a stage"))
}

// Add implements Engine.
func (t *tracer) Add(a, b Ct) Ct {
	x, y := t.in("Add", a), t.in("Add", b)
	if x.level != y.level {
		panic(fmt.Errorf("henn: lower: Add level mismatch %d vs %d", x.level, y.level))
	}
	if !traceScaleClose(x.scale, y.scale) {
		panic(fmt.Errorf("henn: lower: Add scale mismatch 2^%.2f vs 2^%.2f",
			math.Log2(x.scale), math.Log2(y.scale)))
	}
	return t.emit(ir.Op{
		Kind: ir.OpAdd, Args: []int{x.id, y.id}, Hoist: -1,
		Level: x.level, Scale: x.scale,
	})
}

// addPlain emits an OpAddPlain; the plaintext encodes at the operand's
// exact (level, scale), so the sum keeps both.
func (t *tracer) addPlain(op string, ct Ct, key string, v []float64) Ct {
	x := t.in(op, ct)
	return t.emit(ir.Op{
		Kind: ir.OpAddPlain, Args: []int{x.id}, Hoist: -1,
		Plain: v, PlainKey: key, PtScale: x.scale,
		Level: x.level, Scale: x.scale,
	})
}

// AddPlainVec implements Engine.
func (t *tracer) AddPlainVec(ct Ct, v []float64) Ct {
	return t.addPlain("AddPlainVec", ct, "", v)
}

// AddPlainVecCached implements Engine.
func (t *tracer) AddPlainVecCached(ct Ct, key string, v []float64) Ct {
	return t.addPlain("AddPlainVecCached", ct, key, v)
}

// mulPlain emits an OpMulPlain at an explicit plaintext scale.
func (t *tracer) mulPlain(op string, ct Ct, key string, v []float64, scale float64) Ct {
	x := t.in(op, ct)
	if scale <= 0 || math.IsInf(scale, 0) || math.IsNaN(scale) {
		panic(fmt.Errorf("henn: lower: %s plaintext scale %v", op, scale))
	}
	return t.emit(ir.Op{
		Kind: ir.OpMulPlain, Args: []int{x.id}, Hoist: -1,
		Plain: v, PlainKey: key, PtScale: scale,
		Level: x.level, Scale: x.scale * scale,
	})
}

// MulPlainVecAtScale implements Engine.
func (t *tracer) MulPlainVecAtScale(ct Ct, v []float64, scale float64) Ct {
	return t.mulPlain("MulPlainVecAtScale", ct, "", v, scale)
}

// MulPlainVecCached implements Engine.
func (t *tracer) MulPlainVecCached(ct Ct, key string, v []float64, scale float64) Ct {
	return t.mulPlain("MulPlainVecCached", ct, key, v, scale)
}

// MulRelin implements Engine.
func (t *tracer) MulRelin(a, b Ct) Ct {
	x, y := t.in("MulRelin", a), t.in("MulRelin", b)
	if x.level != y.level {
		panic(fmt.Errorf("henn: lower: MulRelin level mismatch %d vs %d", x.level, y.level))
	}
	return t.emit(ir.Op{
		Kind: ir.OpMulRelin, Args: []int{x.id, y.id}, Hoist: -1,
		Level: x.level, Scale: x.scale * y.scale,
	})
}

// MulInt implements Engine. Integer recombination is lowered directly to
// OpRecombine by RNSPlan.Lower; no stage multiplies by a bare integer.
func (t *tracer) MulInt(ct Ct, n int64) Ct {
	panic(fmt.Errorf("henn: lower: MulInt called inside a stage (recombination lowers to OpRecombine)"))
}

// Recombine implements ir.Recombiner symbolically, so sharded stages can
// fuse their cross-shard block sums into one OpRecombine exactly like
// the real engines do at runtime (the executor dispatches the op back to
// the engine's fused Recombine, or to the bit-identical MulInt/Add chain
// with weight-1 multiplies elided).
func (t *tracer) Recombine(args []Ct, weights []int64) Ct {
	if len(args) == 0 || len(weights) != len(args) {
		panic(fmt.Errorf("henn: lower: Recombine with %d args, %d weights", len(args), len(weights)))
	}
	if weights[0] != 1 {
		panic(fmt.Errorf("henn: lower: Recombine weight[0] = %d, want 1", weights[0]))
	}
	first := t.in("Recombine", args[0])
	ids := make([]int, len(args))
	for i, a := range args {
		x := t.in("Recombine", a)
		if x.level != first.level {
			panic(fmt.Errorf("henn: lower: Recombine level mismatch %d vs %d", x.level, first.level))
		}
		if !traceScaleClose(x.scale, first.scale) {
			panic(fmt.Errorf("henn: lower: Recombine scale mismatch 2^%.2f vs 2^%.2f",
				math.Log2(x.scale), math.Log2(first.scale)))
		}
		ids[i] = x.id
	}
	return t.emit(ir.Op{
		Kind: ir.OpRecombine, Args: ids, Weights: append([]int64(nil), weights...), Hoist: -1,
		Level: first.level, Scale: first.scale,
	})
}

// Rescale implements Engine.
func (t *tracer) Rescale(ct Ct) Ct {
	x := t.in("Rescale", ct)
	if x.level <= 0 {
		panic(fmt.Errorf("henn: lower: Rescale at level 0 (modulus chain exhausted)"))
	}
	return t.emit(ir.Op{
		Kind: ir.OpRescale, Args: []int{x.id}, Hoist: -1,
		Level: x.level - 1, Scale: x.scale / t.e.QiFloat(x.level),
	})
}

// DropLevel implements Engine.
func (t *tracer) DropLevel(ct Ct, n int) Ct {
	x := t.in("DropLevel", ct)
	if n < 0 || x.level-n < 0 {
		panic(fmt.Errorf("henn: lower: DropLevel by %d from level %d", n, x.level))
	}
	return t.emit(ir.Op{
		Kind: ir.OpDropLevel, Args: []int{x.id}, Drop: n, Hoist: -1,
		Level: x.level - n, Scale: x.scale,
	})
}

// Rotate implements Engine. Rotation by 0 is the identity, mirroring the
// backends, so no op is emitted.
func (t *tracer) Rotate(ct Ct, k int) Ct {
	x := t.in("Rotate", ct)
	if k == 0 {
		return x
	}
	return t.emit(ir.Op{
		Kind: ir.OpRotate, Args: []int{x.id}, K: k, Hoist: -1,
		Level: x.level, Scale: x.scale,
	})
}

// RotateMany implements Engine. Lowering is canonical: each non-zero
// rotation becomes its own singleton hoist group rather than one
// per-call group, and regrouping is the optimizer's job (the replan
// pass merges every hoisted rotation of a source into one fan-out,
// which subsumes — and usually beats — the per-stage grouping the
// eager interpreter gets from a literal RotateMany call). Grouped and
// singleton hoisted rotations are bit-identical per k on both backends
// (see TestRotateHoistedGroupingBitIdentical), so the grouping choice
// affects key-switch decomposition count, never bits; an unoptimized
// (-opt=off) run stays bit-identical to the legacy interpreter, just
// paying one decomposition per rotation.
func (t *tracer) RotateMany(ct Ct, ks []int) map[int]Ct {
	x := t.in("RotateMany", ct)
	out := make(map[int]Ct, len(ks))
	for _, k := range ks {
		if k == 0 {
			out[0] = x
			continue
		}
		if _, dup := out[k]; dup {
			continue
		}
		c := t.emit(ir.Op{
			Kind: ir.OpRotate, Args: []int{x.id}, K: k, Hoist: len(t.g.Hoists),
			Level: x.level, Scale: x.scale,
		})
		out[k] = c
		t.g.Hoists = append(t.g.Hoists, []int{c.id})
	}
	return out
}

// EncodeVecsAt implements Engine. Encoding is a Prepare-time activity;
// traced stages only reference plaintext vectors symbolically.
func (t *tracer) EncodeVecsAt(specs []PlainSpec) []Pt {
	panic(fmt.Errorf("henn: lower: EncodeVecsAt called inside a stage"))
}

// MulPlainPt implements Engine.
func (t *tracer) MulPlainPt(ct Ct, pt Pt) Ct {
	panic(fmt.Errorf("henn: lower: MulPlainPt called inside a stage (stages use the vector forms)"))
}

// AddPlainPt implements Engine.
func (t *tracer) AddPlainPt(ct Ct, pt Pt) Ct {
	panic(fmt.Errorf("henn: lower: AddPlainPt called inside a stage (stages use the vector forms)"))
}

var (
	_ Engine        = (*tracer)(nil)
	_ ir.Recombiner = (*tracer)(nil)
)

// recoverLowerErr converts a trace panic into a lowering error. Error
// values panic through unwrapped; other panics are formatted.
func recoverLowerErr(err *error) {
	if r := recover(); r != nil {
		if e, ok := r.(error); ok {
			*err = fmt.Errorf("henn: lower: %w", e)
			return
		}
		*err = fmt.Errorf("henn: lower: %v", r)
	}
}

// Lower compiles the plan into an explicit ir.Graph for the parameters
// of e (slots, modulus chain, default scale). The graph is engine-shape
// specific but data independent: one lowering serves every inference on
// that engine. Structural problems — modulus chain too short for the
// plan's depth, scale drift, level mismatches — surface here as errors
// rather than mid-inference panics.
func (p *Plan) Lower(e Engine) (g *ir.Graph, err error) {
	defer recoverLowerErr(&err)
	t := newTracer(e, 1)
	t.beginStage("encrypt", false)
	ct := t.encrypt(0)
	t.setStageOut(ct.id)
	for i, s := range p.Stages {
		t.beginStage(fmt.Sprintf("stage %d (%s)", i, s.Describe()), true)
		ct = t.in("stage output", s.Eval(t, ct))
		t.setStageOut(ct.id)
	}
	t.g.Output = ct.id
	if err := t.g.Validate(); err != nil {
		return nil, err
	}
	return t.g, nil
}

// Lower compiles the RNS-decomposed plan into an ir.Graph with one input
// per digit part. The first linear stage is replicated per part (bias
// only on part 0, matching the linearity argument of §4), the parts are
// recombined with exact integer weights, and the remaining stages run on
// the recomposed ciphertext.
func (p *RNSPlan) Lower(e Engine) (g *ir.Graph, err error) {
	defer recoverLowerErr(&err)
	weights := p.Digits.Weights()
	k := len(weights)
	if len(p.Base.Stages) == 0 {
		return nil, fmt.Errorf("henn: lower: rns plan has no stages")
	}
	first, ok := p.Base.Stages[0].(*LinearStage)
	if !ok {
		return nil, fmt.Errorf("henn: lower: rns plan first stage is %T, want *LinearStage", p.Base.Stages[0])
	}
	t := newTracer(e, k)
	cts := make([]*traceCt, k)
	for i := 0; i < k; i++ {
		t.beginStage(fmt.Sprintf("encrypt part %d", i), false)
		cts[i] = t.encrypt(i)
		t.setStageOut(cts[i].id)
	}
	t.beginStage("rns parts", true)
	outs := make([]*traceCt, k)
	args := make([]int, k)
	w64 := make([]int64, k)
	for i := 0; i < k; i++ {
		if i == 0 {
			outs[i] = t.in("rns part output", first.Eval(t, cts[i]))
		} else {
			outs[i] = t.in("rns part output", first.EvalNoBias(t, cts[i]))
		}
		args[i] = outs[i].id
		w64[i] = int64(weights[i])
	}
	t.setStageOut(outs[0].id)
	for i := 1; i < k; i++ {
		if outs[i].level != outs[0].level || !traceScaleClose(outs[i].scale, outs[0].scale) {
			return nil, fmt.Errorf("henn: lower: rns part %d at (level %d, scale 2^%.2f), part 0 at (level %d, scale 2^%.2f)",
				i, outs[i].level, math.Log2(outs[i].scale), outs[0].level, math.Log2(outs[0].scale))
		}
	}
	t.beginStage("rns recompose", true)
	ct := t.emit(ir.Op{
		Kind: ir.OpRecombine, Args: args, Weights: w64, Hoist: -1,
		Level: outs[0].level, Scale: outs[0].scale,
	})
	t.setStageOut(ct.id)
	for i, s := range p.Base.Stages[1:] {
		t.beginStage(fmt.Sprintf("stage %d (%s)", i+1, s.Describe()), true)
		ct = t.in("stage output", s.Eval(t, ct))
		t.setStageOut(ct.id)
	}
	t.g.Output = ct.id
	if err := t.g.Validate(); err != nil {
		return nil, err
	}
	return t.g, nil
}
